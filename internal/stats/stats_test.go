package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRegressionSlopeExactLine(t *testing.T) {
	// y = 3 + 2x should recover slope 2 exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	if got := RegressionSlope(xs, ys); !almost(got, 2) {
		t.Fatalf("slope = %v, want 2", got)
	}
}

func TestRegressionSlopeNegative(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 8, 6, 4}
	if got := RegressionSlope(xs, ys); !almost(got, -2) {
		t.Fatalf("slope = %v, want -2", got)
	}
}

func TestRegressionSlopeDegenerate(t *testing.T) {
	if got := RegressionSlope([]float64{1}, []float64{1}); got != 0 {
		t.Fatalf("single point slope = %v, want 0", got)
	}
	if got := RegressionSlope([]float64{2, 2, 2}, []float64{1, 5, 9}); got != 0 {
		t.Fatalf("vertical slope = %v, want 0", got)
	}
	if got := RegressionSlope(nil, nil); got != 0 {
		t.Fatalf("empty slope = %v, want 0", got)
	}
}

func TestRegressionSlopePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched lengths")
		}
	}()
	RegressionSlope([]float64{1, 2}, []float64{1})
}

func TestRegressionSlopeShiftInvariant(t *testing.T) {
	// Adding a constant to y must not change the slope.
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
			xs[i] = float64(i)
			ys[i] = v
		}
		s1 := RegressionSlope(xs, ys)
		for i := range ys {
			ys[i] += 100
		}
		s2 := RegressionSlope(xs, ys)
		return math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almost(got, 4) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !almost(got, 2) {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almost(got, 2.5) {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if Median(nil) != 0 {
		t.Fatal("empty median must be 0")
	}
	// Median must not reorder its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v, want -1,7", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(nil) should panic")
		}
	}()
	MinMax(nil)
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almost(got, math.Log(6)) {
		t.Fatalf("LogSumExp = %v, want log 6", got)
	}
	// Stability: huge magnitudes must not overflow.
	got = LogSumExp([]float64{-1e8, -1e8})
	if !almost(got, -1e8+math.Log(2)) {
		t.Fatalf("LogSumExp = %v, want %v", got, -1e8+math.Log(2))
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("empty LogSumExp must be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1)}), -1) {
		t.Fatal("all -Inf LogSumExp must be -Inf")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	Normalize(xs)
	if !almost(xs[0], 0.25) || !almost(xs[1], 0.75) {
		t.Fatalf("Normalize = %v", xs)
	}
	zeros := []float64{0, 0, 0, 0}
	Normalize(zeros)
	for _, v := range zeros {
		if !almost(v, 0.25) {
			t.Fatalf("zero Normalize = %v, want uniform", zeros)
		}
	}
	Normalize(nil) // must not panic
}

func TestVariationalDistance(t *testing.T) {
	p1 := []float64{0.5, 0.5}
	p2 := []float64{0.9, 0.1}
	if got := VariationalDistance(p1, p2); !almost(got, 0.8) {
		t.Fatalf("V = %v, want 0.8", got)
	}
	if got := VariationalDistance(p1, p1); got != 0 {
		t.Fatalf("self V = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	VariationalDistance(p1, []float64{1})
}

func TestSymmetricKL(t *testing.T) {
	p1 := []float64{0.5, 0.5}
	p2 := []float64{0.9, 0.1}
	// J(P1,P2) = (0.5-0.9)ln(0.5/0.9) + (0.5-0.1)ln(0.5/0.1)
	want := (0.5-0.9)*math.Log(0.5/0.9) + (0.5-0.1)*math.Log(0.5/0.1)
	if got := SymmetricKL(p1, p2); !almost(got, want) {
		t.Fatalf("J = %v, want %v", got, want)
	}
	if got := SymmetricKL(p1, p1); got != 0 {
		t.Fatalf("self J = %v, want 0", got)
	}
	// Symmetry.
	if got := SymmetricKL(p2, p1); !almost(got, want) {
		t.Fatalf("J asymmetric: %v vs %v", got, want)
	}
	// Zero entries diverge.
	if got := SymmetricKL([]float64{1, 0}, []float64{0.5, 0.5}); !math.IsInf(got, 1) {
		t.Fatalf("zero-entry J = %v, want +Inf", got)
	}
	// Both-zero entries contribute nothing.
	if got := SymmetricKL([]float64{1, 0}, []float64{1, 0}); got != 0 {
		t.Fatalf("matching-support J = %v, want 0", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3, 5}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ArgMax(nil) should panic")
		}
	}()
	ArgMax(nil)
}
