package stream

import (
	"math/rand/v2"
	"testing"

	"cluseq/internal/core"
	"cluseq/internal/datagen"
	"cluseq/internal/eval"
)

// TestOnlineAccuracyWithinTenPercentOfBatch is the PR's quality gate:
// on the same shuffled synthetic workload, the incremental engine's
// final published model must label sequences at no worse than 90% of
// the batch Cluster() Hungarian accuracy. Both sides are deterministic
// (fixed seeds, fixed stream order), so this is a regression pin, not a
// flaky statistical bound; the observed numbers are recorded in
// EXPERIMENTS.md ("Online vs batch clustering").
func TestOnlineAccuracyWithinTenPercentOfBatch(t *testing.T) {
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 400,
		AvgLength:    80,
		AlphabetSize: 12,
		NumClusters:  4,
		OutlierFrac:  0.02,
		Seed:         5,
	})
	if err != nil {
		t.Fatalf("SyntheticDB: %v", err)
	}
	order := rand.New(rand.NewPCG(42, 5)).Perm(db.Len())
	shuffled := db.Subset(order)
	labels := make([]string, shuffled.Len())
	for i, s := range shuffled.Sequences {
		labels[i] = s.Label
	}

	// Batch reference: the full iterate-to-convergence algorithm on the
	// shuffled database, at the strongest configuration a sweep over
	// {k, t} found for this workload (k=4, t=1.05 — see EXPERIMENTS.md).
	res, err := core.Cluster(shuffled, core.Config{Seed: 5, InitialClusters: 4, SimilarityThreshold: 1.05})
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	batchRep, err := eval.Evaluate(res.PrimaryClustering(), labels)
	if err != nil {
		t.Fatalf("Evaluate batch: %v", err)
	}

	// Online: one pass over the identical arrival order, then label every
	// sequence with the final consolidated snapshot — the model a serving
	// reader would see.
	var clf *core.Classifier
	eng, err := New(Config{
		Alphabet:         shuffled.Alphabet,
		ConsolidateEvery: 64,
		Publish:          func(c *core.Classifier, version uint64) { clf = c },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer eng.Close()
	for _, s := range shuffled.Sequences {
		eng.Ingest(s.Symbols)
	}
	eng.ConsolidateNow()
	if clf == nil {
		t.Fatal("stream never published a classifier")
	}
	assign := make([]int, shuffled.Len())
	for i, s := range shuffled.Sequences {
		assign[i] = clf.Classify(s.Symbols).Cluster
	}
	streamRep, err := eval.Evaluate(eval.FromAssignments(assign), labels)
	if err != nil {
		t.Fatalf("Evaluate stream: %v", err)
	}

	t.Logf("batch: accuracy %.4f over %d clusters; online: accuracy %.4f over %d clusters (%d published)",
		batchRep.Accuracy, batchRep.NumClusters, streamRep.Accuracy, streamRep.NumClusters, eng.Stats().Clusters)
	if streamRep.Accuracy < 0.9*batchRep.Accuracy {
		t.Fatalf("online accuracy %.4f below 90%% of batch %.4f", streamRep.Accuracy, batchRep.Accuracy)
	}
}
