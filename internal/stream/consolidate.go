package stream

import (
	"sort"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/obs"
	"cluseq/internal/pst"
)

// ConsolidateNow forces a consolidation pass immediately, regardless of
// the count cadence — the server's drain path and tests use it to flush
// a partial window. No-op on an engine that has ingested nothing since
// the last pass.
func (e *Engine) ConsolidateNow() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sinceConsol > 0 {
		e.consolidateLocked()
	}
}

// consolidateLocked runs one consolidation pass: merge covered clusters
// and dissolve stillborn ones (§4.5 adapted to streaming evidence),
// re-adjust the similarity threshold from the recent-similarity window
// (§4.6), refresh the background distribution from the running symbol
// counts, recompile every scoring snapshot, and publish a frozen
// classifier. Caller holds e.mu.
//
//cluseq:deterministic
func (e *Engine) consolidateLocked() {
	e.sinceConsol = 0
	e.consolidations++
	e.met.consolidations.Inc()

	// When a traced ingest triggered this pass, the pass's full cost
	// lands on that request's trace — the §4.5/4.6 work is exactly the
	// latency outlier the flight recorder exists to explain.
	reqSpan := e.curTrace.StartSpan("stream_consolidate")
	defer reqSpan.End()

	sp := e.cfg.Tracer.Span("stream_merge", obs.Int64("pass", e.consolidations), obs.Int("clusters", len(e.clusters)))
	start := time.Now() //cluseq:allow determinism: timestamp feeds the phase-seconds histogram only, never the clustering state
	merged, dissolved := e.mergeAndDissolve()
	e.met.mergeSeconds.ObserveSince(start)
	sp.End(obs.Int("merged", merged), obs.Int("dissolved", dissolved))

	sp = e.cfg.Tracer.Span("stream_threshold", obs.Int64("pass", e.consolidations))
	tBefore := e.thr.Threshold()
	valley := 0.0
	if !e.cfg.FixedThreshold {
		valley, _ = e.thr.Adjust(e.simRing[:e.simLen], false)
	}
	t := e.thr.Threshold()
	// Drift is the threshold's per-consolidation movement: a stationary
	// stream settles to ~0; sustained non-zero drift means the similarity
	// distribution itself is moving.
	e.lastDrift = t - tBefore
	e.thresholds = append(e.thresholds, t)
	if len(e.thresholds) > thresholdHistoryLen {
		e.thresholds = e.thresholds[1:]
	}
	e.met.threshold.Set(t)
	e.met.thresholdDrift.Set(e.lastDrift)
	e.met.thresholdHistory.Observe(t)
	sp.End(obs.Float("t", t), obs.Float("valley", valley), obs.Float("drift", e.lastDrift))

	// Refresh the background from the running symbol counts, then
	// recompile every snapshot against it (similarities are only
	// comparable when snapshot and fallback scan share one background).
	if e.totalSyms > 0 {
		for s, c := range e.symCounts {
			e.background[s] = float64(c) / float64(e.totalSyms)
		}
	}
	for _, c := range e.clusters {
		c.snap = c.tree.CompileSnapshot(e.background)
	}

	sp = e.cfg.Tracer.Span("stream_publish", obs.Int64("pass", e.consolidations))
	published := e.publishLocked()
	sp.End(obs.Bool("published", published), obs.Int64("version", int64(e.version)))

	e.observeLocked()
	if e.cfg.Logf != nil {
		e.cfg.Logf("stream consolidation %d: %d clusters (-%d merged, -%d dissolved), t=%.4g (drift %+.3g), v%d",
			e.consolidations, len(e.clusters), merged, dissolved, t, e.lastDrift, e.version)
	}
}

// thresholdHistoryLen bounds the per-consolidation threshold history
// kept for the stats endpoint.
const thresholdHistoryLen = 64

// mergeAndDissolve scans clusters smallest-first (ties: newest first,
// matching the batch engine's §4.5 order) and, for each, either
// dissolves it — still under MinClusterSize past the grace period — or
// absorbs it into the first larger cluster whose threshold at least
// MergeFraction of its reservoir clears. Merging sums the tree
// statistics (pst.Tree.Merge), so the absorbed evidence keeps scoring.
//
//cluseq:deterministic
func (e *Engine) mergeAndDissolve() (merged, dissolved int) {
	if len(e.clusters) == 0 {
		return 0, 0
	}
	idx := make([]int, len(e.clusters))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := e.clusters[idx[a]], e.clusters[idx[b]]
		if ca.size != cb.size {
			return ca.size < cb.size
		}
		return ca.id > cb.id // among equals, newer clusters go first
	})
	dropped := make([]bool, len(e.clusters))
	for pos, ci := range idx {
		c := e.clusters[ci]
		if c.size < int64(e.cfg.MinClusterSize) && e.ingested-c.createdAt >= int64(e.cfg.DissolveAfter) {
			dropped[ci] = true
			dissolved++
			e.dissolves++
			e.met.dissolved.Inc()
			continue
		}
		// Only clusters later in the scan (larger, or equal-size older)
		// are absorption candidates, mirroring the batch consolidation's
		// "other (larger) clusters".
		for _, cj := range idx[pos+1:] {
			if dropped[cj] {
				continue
			}
			target := e.clusters[cj]
			if e.coverage(c, target) >= e.cfg.MergeFraction {
				if err := target.tree.Merge(c.tree); err != nil {
					// Trees within one engine always share configuration; a
					// mismatch would be a programming error worth surfacing.
					panic(err)
				}
				target.size += c.size
				for _, s := range c.reservoir {
					e.pushReservoir(target, s)
				}
				dropped[ci] = true
				merged++
				e.merges++
				e.met.merged.Inc()
				break
			}
		}
	}
	if merged+dissolved == 0 {
		return 0, 0
	}
	kept := e.clusters[:0]
	for i, c := range e.clusters {
		if !dropped[i] {
			kept = append(kept, c)
		}
	}
	// Clear the tail so dropped trees are collectable.
	for i := len(kept); i < len(e.clusters); i++ {
		e.clusters[i] = nil
	}
	e.clusters = kept
	e.met.clusters.Set(float64(len(e.clusters)))
	return merged, dissolved
}

// coverage is the fraction of c's reservoir that clears target's
// threshold — the streaming stand-in for §4.5's member-overlap test,
// since a stream engine holds no global membership sets.
//
//cluseq:deterministic
func (e *Engine) coverage(c, target *scluster) float64 {
	if len(c.reservoir) == 0 {
		return 0
	}
	covered := 0
	for _, syms := range c.reservoir {
		sim := clusterScore(target, e.background, syms)
		if e.normLogSim(sim, len(syms)) >= e.thr.LogT {
			covered++
		}
	}
	return float64(covered) / float64(len(c.reservoir))
}

// publishLocked freezes the current clusters into a classifier and
// hands it to the Publish callback. Trees are deep-cloned so the
// published model is immutable while the live trees keep absorbing the
// stream; reports whether a snapshot went out (an empty engine
// publishes nothing — a classifier needs at least one cluster).
//
//cluseq:deterministic
func (e *Engine) publishLocked() bool {
	if e.cfg.Publish == nil || len(e.clusters) == 0 {
		return false
	}
	trees := make([]*pst.Tree, len(e.clusters))
	for i, c := range e.clusters {
		trees[i] = c.tree.Clone()
	}
	clf, err := core.NewClassifierFromParts(trees, e.cfg.Alphabet, e.background, e.thr.Threshold(), e.cfg.RawSimilarity)
	if err != nil {
		// Unreachable with engine-built parts; surface loudly if not.
		panic(err)
	}
	e.version++
	e.met.published.Inc()
	e.met.publishedVersion.Set(float64(e.version))
	e.cfg.Publish(clf, e.version)
	return true
}

// observeLocked refreshes the size gauges.
func (e *Engine) observeLocked() {
	nodes, bytes := 0, 0
	for _, c := range e.clusters {
		nodes += c.tree.NumNodes()
		bytes += c.tree.EstimatedBytes()
	}
	e.met.clusters.Set(float64(len(e.clusters)))
	e.met.pstNodes.Set(float64(nodes))
	e.met.pstBytes.Set(float64(bytes))
}

// Stats is a point-in-time summary of the engine, shaped for the
// daemon's /v1/ingest/stats endpoint.
type Stats struct {
	Ingested         int64     `json:"ingested"`
	Accepted         int64     `json:"accepted"`
	NewClusters      int64     `json:"new_clusters"`
	Rejected         int64     `json:"rejected"`
	Clusters         int       `json:"clusters"`
	Consolidations   int64     `json:"consolidations"`
	Merges           int64     `json:"merges"`
	Dissolves        int64     `json:"dissolves"`
	PublishedVersion uint64    `json:"published_version"`
	Threshold        float64   `json:"threshold"`
	LastDrift        float64   `json:"last_drift"`
	PSTNodes         int       `json:"pst_nodes"`
	PSTBytes         int       `json:"pst_bytes"`
	ThresholdHistory []float64 `json:"threshold_history,omitempty"`
}

// Stats returns the engine's current counters and sizes.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Ingested:         e.ingested,
		Accepted:         e.accepted,
		NewClusters:      e.created,
		Rejected:         e.rejected,
		Clusters:         len(e.clusters),
		Consolidations:   e.consolidations,
		Merges:           e.merges,
		Dissolves:        e.dissolves,
		PublishedVersion: e.version,
		Threshold:        e.thr.Threshold(),
		LastDrift:        e.lastDrift,
		ThresholdHistory: append([]float64(nil), e.thresholds...),
	}
	for _, c := range e.clusters {
		st.PSTNodes += c.tree.NumNodes()
		st.PSTBytes += c.tree.EstimatedBytes()
	}
	return st
}

// ClusterIDs returns the live cluster IDs in creation order; tests use
// it to assert model evolution without reaching into engine internals.
func (e *Engine) ClusterIDs() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(e.clusters))
	for i, c := range e.clusters {
		out[i] = c.id
	}
	return out
}
