package stream

import "cluseq/internal/obs"

// streamMetrics holds the engine's pre-registered metric handles. The
// zero value (no registry) is all nil handles, which are no-ops, so the
// ingest path never branches on "is obs enabled". Catalogue in
// DESIGN.md §13.
type streamMetrics struct {
	ingested       *obs.Counter
	accepted       *obs.Counter
	newClusters    *obs.Counter
	rejected       *obs.Counter
	consolidations *obs.Counter
	merged         *obs.Counter
	dissolved      *obs.Counter
	published      *obs.Counter

	clusters         *obs.Gauge
	pstNodes         *obs.Gauge
	pstBytes         *obs.Gauge
	threshold        *obs.Gauge
	thresholdDrift   *obs.Gauge
	publishedVersion *obs.Gauge

	ingestSeconds    *obs.Histogram
	mergeSeconds     *obs.Histogram
	thresholdHistory *obs.Histogram
	lockWaitSeconds  *obs.Histogram
}

func newStreamMetrics(reg *obs.Registry) streamMetrics {
	if reg == nil {
		return streamMetrics{}
	}
	return streamMetrics{
		ingested:       reg.Counter("cluseq_stream_ingested_total"),
		accepted:       reg.Counter("cluseq_stream_accepted_total"),
		newClusters:    reg.Counter("cluseq_stream_new_clusters_total"),
		rejected:       reg.Counter("cluseq_stream_rejected_total"),
		consolidations: reg.Counter("cluseq_stream_consolidations_total"),
		merged:         reg.Counter("cluseq_stream_merged_total"),
		dissolved:      reg.Counter("cluseq_stream_dissolved_total"),
		published:      reg.Counter("cluseq_stream_published_total"),

		clusters:         reg.Gauge("cluseq_stream_clusters"),
		pstNodes:         reg.Gauge("cluseq_stream_pst_nodes"),
		pstBytes:         reg.Gauge("cluseq_stream_pst_bytes"),
		threshold:        reg.Gauge("cluseq_stream_threshold"),
		thresholdDrift:   reg.Gauge("cluseq_stream_threshold_drift"),
		publishedVersion: reg.Gauge("cluseq_stream_published_version"),

		// One ingest is a handful of tree scans: [0, 100ms) at 0.5ms
		// resolution covers even large cluster counts.
		ingestSeconds: reg.Histogram("cluseq_stream_ingest_seconds", 0, 0.1, 200),
		// A merge pass scores every reservoir pair: [0, 5s) at 10ms.
		mergeSeconds: reg.Histogram("cluseq_stream_merge_seconds", 0, 5, 500),
		// Thresholds land near 1; [0, 10) at 0.05 keeps the history
		// readable as a distribution over consolidations.
		thresholdHistory: reg.Histogram("cluseq_stream_threshold_history", 0, 10, 200),
		// Time an ingest spent queued behind the engine mutex: [0, 1s)
		// at 5ms resolution — the contention signal under open-loop load.
		lockWaitSeconds: reg.Histogram("cluseq_stream_lock_wait_seconds", 0, 1, 200),
	}
}
