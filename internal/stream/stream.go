// Package stream implements incremental CLUSEQ clustering over an
// unbounded sequence stream. Where package core clusters a fixed
// database by iterating to convergence, this engine absorbs sequences
// one at a time (or in small batches): each arrival is scored against
// every live cluster's probabilistic suffix tree, joins the best
// cluster whose similarity clears the threshold (inserting its
// best-scoring segment, §4.4), or founds a new cluster when none does
// (§4.1 degenerates to seeding from the arrival itself). Periodic
// consolidation passes — every ConsolidateEvery ingests, and optionally
// on a wall-clock flush for idle streams — merge redundant clusters
// (§4.5), dissolve stillborn ones, re-adjust the similarity threshold
// from the recent-similarity histogram (§4.6), refresh the background
// distribution from the running symbol counts, and publish an
// immutable, version-stamped core.Classifier snapshot for serving.
//
// Concurrency contract: Ingest, IngestBatch, and Stats may be called
// from any number of goroutines; one mutex serializes all mutation, so
// the final cluster models depend only on the arrival order the engine
// observes, never on scheduling. Workers parallelism is applied only
// inside a single ingest's scoring fan-out (index-partitioned writes),
// so results are bit-identical at any worker count. Readers never see
// engine internals: they classify against the published snapshots,
// which are deep copies (pst.Tree.Clone) frozen at publication.
package stream

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/obs"
	"cluseq/internal/pool"
	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// Config parameterizes a streaming engine. The zero value of every
// field except Alphabet picks a sensible default.
type Config struct {
	// Alphabet encodes incoming sequences and is carried into every
	// published classifier. Required.
	Alphabet *seq.Alphabet
	// SimilarityThreshold is the initial t (see core.Config). Default 1.5.
	SimilarityThreshold float64
	// RawSimilarity disables per-symbol normalization (see core.Config).
	RawSimilarity bool
	// FixedThreshold disables the §4.6 adjustment at consolidation time.
	FixedThreshold bool
	// MaxDepth, Significance, MaxPSTBytes, Prune, PMin, Shrinkage, and
	// FixedSignificance parameterize the per-cluster suffix trees exactly
	// as in core.Config. MaxPSTBytes is the §5.1 memory cap, enforced by
	// the deterministic pruner on every insert.
	MaxDepth          int
	Significance      int
	MaxPSTBytes       int
	Prune             pst.PruneStrategy
	PMin              float64
	Shrinkage         float64
	FixedSignificance bool
	// InsertWhole inserts a joining sequence's entire symbol string
	// instead of only its best-scoring segment (see core.Config).
	InsertWhole bool
	// HistogramBuckets and Valley parameterize the §4.6 threshold
	// histogram (see core.Config). Defaults 100 and ValleyAuto.
	HistogramBuckets int
	Valley           core.ValleyEstimator
	// ConsolidateEvery is the consolidation cadence in ingests: after
	// every ConsolidateEvery arrivals the engine merges, dissolves,
	// re-thresholds, and publishes. Count-based so a replayed stream
	// consolidates at identical points. Default 256.
	ConsolidateEvery int
	// FlushInterval, when positive, additionally consolidates on a
	// wall-clock timer whenever ingests have arrived since the last pass,
	// so an idle stream still publishes its tail. Wall-clock triggers are
	// inherently schedule-dependent; leave zero for deterministic replay.
	FlushInterval time.Duration
	// MaxClusters bounds the live cluster count: arrivals that clear no
	// threshold once the cap is reached are rejected instead of founding
	// new clusters. Zero means 1024 (a memory backstop, not a tuning
	// knob — consolidation keeps real workloads far below it).
	MaxClusters int
	// MinClusterSize is the §4.5-style support floor: clusters still
	// smaller than this DissolveAfter ingests past their creation are
	// dissolved at consolidation. Default 2.
	MinClusterSize int
	// DissolveAfter is the dissolve grace period in ingests. Default
	// 2·ConsolidateEvery (a stillborn cluster survives roughly two
	// consolidations to attract members).
	DissolveAfter int
	// MergeFraction is the coverage level at which a cluster is absorbed
	// by a larger one: when at least this fraction of the smaller
	// cluster's reservoir clears the larger cluster's threshold, the
	// trees are merged (pst.Tree.Merge). Default 0.6.
	MergeFraction float64
	// ReservoirSize bounds the per-cluster ring of recent member
	// sequences kept for merge decisions. Default 32.
	ReservoirSize int
	// SimWindow bounds the sliding window of recent sequence-cluster
	// log-similarities feeding the §4.6 histogram. Default 4096, raised
	// to 2·HistogramBuckets when smaller (below that the adjuster never
	// fires).
	SimWindow int
	// Workers bounds the scoring fan-out parallelism within one ingest;
	// 0 uses GOMAXPROCS, 1 forces serial scoring. Any value produces
	// bit-identical cluster models.
	Workers int
	// Resume, when non-nil, seeds the engine from a previously published
	// snapshot instead of starting empty: its trees (the bundle must
	// have been saved with core.BundleOptions.WithTrees) become the
	// initial clusters, its background and threshold carry over, and
	// version numbering continues from its PublishedVersion so a
	// restarted daemon never republishes a stale version number. The
	// classifier itself is not mutated — the engine clones the trees —
	// so the caller may keep serving it. Symbol counts are not
	// persisted: the background holds until fresh stream counts replace
	// it at the first consolidation.
	Resume *core.Classifier
	// Publish, when non-nil, receives each consolidation's frozen
	// classifier together with its monotonically increasing version.
	// Called under the engine mutex — implementations must not call back
	// into the engine and should be cheap (an atomic pointer swap; see
	// registry.Publish).
	Publish func(clf *core.Classifier, version uint64)
	// Obs, when non-nil, receives the stream metrics (see DESIGN.md §13).
	Obs *obs.Registry
	// Tracer, when non-nil, receives one span per consolidation phase
	// (stream_merge, stream_threshold, stream_publish).
	Tracer *obs.Tracer
	// Logf, when non-nil, receives one line per consolidation.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.Alphabet == nil {
		return c, fmt.Errorf("stream: Config.Alphabet is required")
	}
	if c.SimilarityThreshold == 0 {
		c.SimilarityThreshold = 1.5
	}
	if c.SimilarityThreshold <= 0 {
		return c, fmt.Errorf("stream: SimilarityThreshold must be positive, got %v", c.SimilarityThreshold)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = pst.DefaultMaxDepth
	}
	if c.Significance == 0 {
		c.Significance = pst.DefaultSignificance
	}
	if c.Significance < 1 {
		return c, fmt.Errorf("stream: Significance must be positive, got %d", c.Significance)
	}
	if c.PMin == 0 {
		c.PMin = 0.25 / float64(c.Alphabet.Size())
	}
	if c.PMin < 0 {
		c.PMin = 0
	}
	if c.Shrinkage < 0 {
		c.Shrinkage = 0
	}
	if c.HistogramBuckets == 0 {
		c.HistogramBuckets = 100
	}
	if c.HistogramBuckets < 3 {
		return c, fmt.Errorf("stream: HistogramBuckets must be at least 3, got %d", c.HistogramBuckets)
	}
	if c.ConsolidateEvery == 0 {
		c.ConsolidateEvery = 256
	}
	if c.ConsolidateEvery < 1 {
		return c, fmt.Errorf("stream: ConsolidateEvery must be positive, got %d", c.ConsolidateEvery)
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = 1024
	}
	if c.MaxClusters < 1 {
		return c, fmt.Errorf("stream: MaxClusters must be positive, got %d", c.MaxClusters)
	}
	if c.MinClusterSize == 0 {
		c.MinClusterSize = 2
	}
	if c.DissolveAfter == 0 {
		c.DissolveAfter = 2 * c.ConsolidateEvery
	}
	if c.MergeFraction == 0 {
		c.MergeFraction = 0.6
	}
	if c.MergeFraction < 0 || c.MergeFraction > 1 {
		return c, fmt.Errorf("stream: MergeFraction must be in [0, 1], got %v", c.MergeFraction)
	}
	if c.ReservoirSize == 0 {
		c.ReservoirSize = 32
	}
	if c.ReservoirSize < 1 {
		return c, fmt.Errorf("stream: ReservoirSize must be positive, got %d", c.ReservoirSize)
	}
	if c.SimWindow == 0 {
		c.SimWindow = 4096
	}
	if c.SimWindow < 2*c.HistogramBuckets {
		c.SimWindow = 2 * c.HistogramBuckets
	}
	return c, nil
}

// Status classifies one ingest outcome.
type Status string

const (
	// StatusAccepted: the sequence joined an existing cluster.
	StatusAccepted Status = "accepted"
	// StatusNewCluster: no cluster cleared the threshold; the sequence
	// founded a new one.
	StatusNewCluster Status = "new_cluster"
	// StatusRejected: the sequence was not absorbed (empty, symbols
	// outside the alphabet, or the cluster cap is reached).
	StatusRejected Status = "rejected"
)

// Verdict is the per-sequence outcome of an ingest.
type Verdict struct {
	// Status is the outcome kind.
	Status Status `json:"status"`
	// Cluster is the stable ID of the cluster joined or founded; −1 on
	// rejection.
	Cluster int `json:"cluster"`
	// Similarity is the per-symbol normalized similarity to the best
	// existing cluster (matching core.Assignment.Similarity); 0 when no
	// clusters existed yet.
	Similarity float64 `json:"similarity"`
	// Reason explains a rejection; empty otherwise.
	Reason string `json:"reason,omitempty"`
}

// scluster is one live cluster of the stream engine.
type scluster struct {
	id   int
	tree *pst.Tree
	// snap is the compiled scoring snapshot, refreshed at every
	// consolidation; between refreshes an insert invalidates it and
	// scoring falls back to the (bit-identical) tree scan.
	snap *pst.Snapshot
	// size counts sequences absorbed (seed included).
	size int64
	// createdAt is the engine's ingest counter when the cluster was
	// founded; the dissolve grace period is measured from it.
	createdAt int64
	// reservoir is a ring of recent member sequences (copies), the
	// evidence base for merge decisions.
	reservoir [][]seq.Symbol
	resNext   int
}

// Engine is an incremental clustering engine. Construct with New.
type Engine struct {
	cfg Config

	mu sync.Mutex
	// background is the similarity background distribution, frozen
	// between consolidations (initially uniform) and recomputed from the
	// running symbol counts at each pass.
	background []float64
	symCounts  []int64
	totalSyms  int64
	clusters   []*scluster
	thr        core.ThresholdAdjuster
	nextID     int

	ingested       int64
	accepted       int64
	created        int64
	rejected       int64
	merges         int64
	dissolves      int64
	consolidations int64
	version        uint64
	lastDrift      float64
	sinceConsol    int
	// thresholds keeps the recent per-consolidation threshold history
	// (similarity domain) for the stats endpoint.
	thresholds []float64

	// simRing is the sliding window of recent sequence-cluster
	// normalized log-similarities feeding the §4.6 histogram.
	simRing []float64
	simLen  int
	simNext int

	// pool serves the per-ingest scoring fan-out; nil when Workers=1.
	pool *pool.Pool
	// sims/norms are per-cluster scratch, index-partitioned by the
	// fan-out (slot i belongs to cluster i exclusively).
	sims  []pst.Similarity
	norms []float64

	met streamMetrics

	// curTrace is the request trace of the ingest currently holding the
	// mutex (nil outside traced ingests); consolidateLocked attributes
	// its consolidation span to it, so the request that happened to
	// trigger a pass shows the cost it absorbed. Set and cleared under
	// e.mu.
	curTrace *obs.RequestTrace

	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// New constructs a streaming engine. Close releases its background
// flusher (when FlushInterval is set).
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := cfg.Alphabet.Size()
	e := &Engine{
		cfg:        cfg,
		background: make([]float64, n),
		symCounts:  make([]int64, n),
		thr: core.ThresholdAdjuster{
			LogT:    math.Log(cfg.SimilarityThreshold),
			Buckets: cfg.HistogramBuckets,
			Valley:  cfg.Valley,
			// Non-sticky: a stream's similarity distribution drifts, so the
			// threshold must keep tracking it; the per-consolidation delta
			// is surfaced as the drift metric.
			Sticky: false,
		},
		simRing: make([]float64, cfg.SimWindow),
	}
	for s := range e.background {
		e.background[s] = 1 / float64(n)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		e.pool = pool.New(workers - 1)
		e.pool.Instrument(cfg.Obs, "cluseq_stream_pool")
	}
	e.met = newStreamMetrics(cfg.Obs)
	e.met.threshold.Set(cfg.SimilarityThreshold)
	if cfg.Resume != nil {
		if err := e.adoptResume(cfg.Resume); err != nil {
			return nil, err
		}
	}
	if cfg.FlushInterval > 0 {
		e.done = make(chan struct{})
		e.wg.Add(1)
		go e.flushLoop()
	}
	return e, nil
}

// Close stops the background flusher. Idempotent; concurrent with
// ingests, which remain valid after Close (only the timer stops).
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	if e.done != nil {
		close(e.done)
		e.wg.Wait()
	}
}

func (e *Engine) flushLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			e.mu.Lock()
			if e.sinceConsol > 0 {
				e.consolidateLocked()
			}
			e.mu.Unlock()
		}
	}
}

// adoptResume rebuilds the engine's live state from a persisted
// snapshot (see Config.Resume). Resumed clusters get ids 0..n-1 in
// bundle order and a size of MinClusterSize so the dissolve rule does
// not treat them as stillborn the moment they return.
func (e *Engine) adoptResume(clf *core.Classifier) error {
	trees := clf.Trees()
	if len(trees) == 0 {
		return fmt.Errorf("stream: Resume classifier carries no trees; persist bundles with core.BundleOptions.WithTrees")
	}
	info := clf.Info()
	if info.Alphabet != e.cfg.Alphabet.String() {
		return fmt.Errorf("stream: Resume alphabet %q does not match engine alphabet %q", info.Alphabet, e.cfg.Alphabet.String())
	}
	if info.RawSimilarity != e.cfg.RawSimilarity {
		return fmt.Errorf("stream: Resume raw-similarity %v does not match engine configuration %v", info.RawSimilarity, e.cfg.RawSimilarity)
	}
	bg := clf.Background()
	if len(bg) != e.cfg.Alphabet.Size() {
		return fmt.Errorf("stream: Resume background has %d symbols, engine alphabet %d", len(bg), e.cfg.Alphabet.Size())
	}
	want := e.newTree().Config()
	for i, t := range trees {
		if got := t.Config(); got.AlphabetSize != want.AlphabetSize || got.MaxDepth != want.MaxDepth {
			return fmt.Errorf("stream: Resume tree %d trained with alphabet %d depth %d, engine wants alphabet %d depth %d (consolidation merges would mix incompatible trees)",
				i, got.AlphabetSize, got.MaxDepth, want.AlphabetSize, want.MaxDepth)
		}
	}
	copy(e.background, bg)
	for i, t := range trees {
		c := &scluster{
			id:   i,
			tree: t.Clone(),
			size: int64(e.cfg.MinClusterSize),
		}
		c.snap = c.tree.CompileSnapshot(e.background)
		e.clusters = append(e.clusters, c)
	}
	e.nextID = len(trees)
	if info.Threshold > 0 {
		e.thr.LogT = math.Log(info.Threshold)
	}
	e.version = clf.PublishedVersion()
	e.met.clusters.Set(float64(len(e.clusters)))
	e.met.publishedVersion.Set(float64(e.version))
	e.met.threshold.Set(e.thr.Threshold())
	return nil
}

func (e *Engine) newTree() *pst.Tree {
	return pst.MustNew(pst.Config{
		AlphabetSize:         e.cfg.Alphabet.Size(),
		MaxDepth:             e.cfg.MaxDepth,
		Significance:         e.cfg.Significance,
		MaxBytes:             e.cfg.MaxPSTBytes,
		Prune:                e.cfg.Prune,
		PMin:                 e.cfg.PMin,
		Shrinkage:            e.cfg.Shrinkage,
		AdaptiveSignificance: e.cfg.Shrinkage <= 0 && !e.cfg.FixedSignificance,
	})
}

// Ingest absorbs one sequence and returns its verdict.
func (e *Engine) Ingest(syms []seq.Symbol) Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingestLocked(syms)
}

// IngestString encodes raw under the engine's alphabet and ingests it;
// runes outside the alphabet yield a rejection verdict, not an error.
func (e *Engine) IngestString(raw string) Verdict {
	syms, err := e.cfg.Alphabet.Encode(raw)
	if err != nil {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.ingested++
		e.rejected++
		e.met.ingested.Inc()
		e.met.rejected.Inc()
		return Verdict{Status: StatusRejected, Cluster: -1, Reason: err.Error()}
	}
	return e.Ingest(syms)
}

// IngestBatch absorbs the sequences in order under one lock
// acquisition; the returned verdicts are index-aligned with the input.
func (e *Engine) IngestBatch(batch [][]seq.Symbol) []Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Verdict, len(batch))
	for i, syms := range batch {
		out[i] = e.ingestLocked(syms)
	}
	return out
}

// IngestStrings is IngestBatch over raw strings.
func (e *Engine) IngestStrings(batch []string) []Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingestStringsLocked(batch)
}

// IngestStringsCtx is IngestStrings with request-trace attribution: when
// ctx carries a live trace (obs.ContextWithTrace), the time spent queued
// behind the engine mutex and the time doing the actual ingest work are
// recorded as separate spans (stream_queue_wait / stream_ingest), and a
// consolidation pass triggered by this batch appears as its own span on
// the same trace. The queue wait also feeds the
// cluseq_stream_lock_wait_seconds histogram for every caller, traced or
// not. Verdicts are identical to IngestStrings — tracing observes the
// engine, never steers it.
func (e *Engine) IngestStringsCtx(ctx context.Context, batch []string) []Verdict {
	tr := obs.TraceFromContext(ctx)
	wait := tr.StartSpan("stream_queue_wait")
	lockStart := time.Now()
	e.mu.Lock()
	wait.End()
	e.met.lockWaitSeconds.Observe(time.Since(lockStart).Seconds())
	e.curTrace = tr
	work := tr.StartSpan("stream_ingest")
	defer func() {
		work.End()
		e.curTrace = nil
		e.mu.Unlock()
	}()
	return e.ingestStringsLocked(batch)
}

// ingestStringsLocked encodes and ingests the batch in order. Caller
// holds e.mu.
func (e *Engine) ingestStringsLocked(batch []string) []Verdict {
	out := make([]Verdict, len(batch))
	for i, raw := range batch {
		syms, err := e.cfg.Alphabet.Encode(raw)
		if err != nil {
			e.ingested++
			e.rejected++
			e.met.ingested.Inc()
			e.met.rejected.Inc()
			out[i] = Verdict{Status: StatusRejected, Cluster: -1, Reason: err.Error()}
			continue
		}
		out[i] = e.ingestLocked(syms)
	}
	return out
}

// ingestLocked is the single-arrival pipeline: validate, score against
// every cluster (parallel, index-partitioned), join-or-found serially,
// then consolidate when the cadence comes due. Caller holds e.mu.
//
//cluseq:deterministic
func (e *Engine) ingestLocked(syms []seq.Symbol) Verdict {
	start := time.Now() //cluseq:allow determinism: timestamp feeds the ingest-seconds histogram only, never the clustering state
	e.ingested++
	e.met.ingested.Inc()
	if len(syms) == 0 {
		e.rejected++
		e.met.rejected.Inc()
		return Verdict{Status: StatusRejected, Cluster: -1, Reason: "empty sequence"}
	}
	alpha := e.cfg.Alphabet.Size()
	for _, s := range syms {
		if int(s) < 0 || int(s) >= alpha {
			e.rejected++
			e.met.rejected.Inc()
			return Verdict{Status: StatusRejected, Cluster: -1, Reason: fmt.Sprintf("symbol %d outside alphabet of %d", s, alpha)}
		}
	}
	for _, s := range syms {
		e.symCounts[s]++
	}
	e.totalSyms += int64(len(syms))

	// Parallel scoring fan-out: slot i is written by exactly one worker.
	n := len(e.clusters)
	if cap(e.sims) < n {
		e.sims = make([]pst.Similarity, n)
		e.norms = make([]float64, n)
	}
	e.sims, e.norms = e.sims[:n], e.norms[:n]
	e.forEachWorker(n, func(i int) {
		c := e.clusters[i]
		sim := clusterScore(c, e.background, syms)
		e.sims[i] = sim
		e.norms[i] = e.normLogSim(sim, len(syms))
	})

	// Serial selection: first maximum wins, so the verdict is independent
	// of worker count and scheduling.
	best, bestNorm := -1, math.Inf(-1)
	for i, norm := range e.norms {
		if !math.IsInf(norm, -1) {
			e.pushSim(norm)
		}
		if norm > bestNorm {
			bestNorm = norm
			best = i
		}
	}

	v := Verdict{Similarity: 0}
	if best >= 0 {
		v.Similarity = math.Exp(bestNorm)
	}
	switch {
	case best >= 0 && bestNorm >= e.thr.LogT:
		c := e.clusters[best]
		if e.cfg.InsertWhole {
			c.tree.Insert(syms)
		} else {
			c.tree.Insert(syms[e.sims[best].Start:e.sims[best].End])
		}
		c.size++
		e.pushReservoir(c, syms)
		e.accepted++
		e.met.accepted.Inc()
		v.Status, v.Cluster = StatusAccepted, c.id
	case len(e.clusters) < e.cfg.MaxClusters:
		c := &scluster{
			id:        e.nextID,
			tree:      e.newTree(),
			size:      1,
			createdAt: e.ingested,
		}
		e.nextID++
		c.tree.Insert(syms)
		c.snap = c.tree.CompileSnapshot(e.background)
		e.pushReservoir(c, syms)
		e.clusters = append(e.clusters, c)
		e.created++
		e.met.newClusters.Inc()
		e.met.clusters.Set(float64(len(e.clusters)))
		v.Status, v.Cluster = StatusNewCluster, c.id
	default:
		e.rejected++
		e.met.rejected.Inc()
		v.Status, v.Cluster = StatusRejected, -1
		v.Reason = fmt.Sprintf("below threshold and cluster cap %d reached", e.cfg.MaxClusters)
	}

	e.sinceConsol++
	if e.sinceConsol >= e.cfg.ConsolidateEvery {
		e.consolidateLocked()
	}
	e.met.ingestSeconds.ObserveSince(start)
	return v
}

// pushSim records one normalized log-similarity into the sliding §4.6
// window.
//
//cluseq:deterministic
func (e *Engine) pushSim(norm float64) {
	e.simRing[e.simNext] = norm
	e.simNext = (e.simNext + 1) % len(e.simRing)
	if e.simLen < len(e.simRing) {
		e.simLen++
	}
}

// pushReservoir adds a copy of syms to the cluster's recent-member ring.
//
//cluseq:deterministic
func (e *Engine) pushReservoir(c *scluster, syms []seq.Symbol) {
	cp := append([]seq.Symbol(nil), syms...)
	if len(c.reservoir) < e.cfg.ReservoirSize {
		c.reservoir = append(c.reservoir, cp)
		return
	}
	c.reservoir[c.resNext] = cp
	c.resNext = (c.resNext + 1) % len(c.reservoir)
}

// clusterScore scores syms against one cluster: through the compiled
// snapshot while it is current, else through the tree's own scan (an
// insert since the last consolidation bumped the version). Both paths
// produce bit-identical results by the snapshot contract.
//
//cluseq:hotpath
//cluseq:deterministic
func clusterScore(c *scluster, background []float64, syms []seq.Symbol) pst.Similarity {
	if c.snap.Valid(c.tree) {
		return c.snap.Similarity(syms)
	}
	return c.tree.SimilarityFast(syms, background)
}

// normLogSim converts a similarity to the per-symbol log scale the
// threshold lives on (see core.Config.SimilarityThreshold).
//
//cluseq:hotpath
//cluseq:deterministic
func (e *Engine) normLogSim(sim pst.Similarity, seqLen int) float64 {
	if e.cfg.RawSimilarity || seqLen == 0 {
		return sim.LogSim
	}
	return sim.LogSim / float64(seqLen)
}

// forEachWorker runs fn(i) for i in [0, n), on the engine's pool when
// one exists and n is large enough to pay for the dispatch, serially
// otherwise.
//
//cluseq:fanout
func (e *Engine) forEachWorker(n int, fn func(i int)) {
	if e.pool == nil || n < 4 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	e.pool.Run(n, fn)
}
