package stream

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"cluseq/internal/core"
	"cluseq/internal/datagen"
	"cluseq/internal/seq"
)

// streamTestConfig tunes the engine for the planted datagen workload the
// tests replay: small alphabet, shallow trees, fixed significance — the
// same regime the CLI e2e uses for synthetic data.
func streamTestConfig(t *testing.T, alphabet *seq.Alphabet) Config {
	t.Helper()
	return Config{
		Alphabet:            alphabet,
		SimilarityThreshold: 1.05,
		MaxDepth:            5,
		Significance:        12,
		FixedSignificance:   true,
		ConsolidateEvery:    64,
		Workers:             1,
	}
}

// syntheticStream builds the shuffled labeled stream shared by the
// determinism and accuracy tests.
func syntheticStream(t *testing.T, n int) (*seq.Database, []int) {
	t.Helper()
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: n,
		AvgLength:    80,
		AlphabetSize: 12,
		NumClusters:  4,
		OutlierFrac:  0.02,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("SyntheticDB: %v", err)
	}
	order := rand.New(rand.NewPCG(99, 7)).Perm(db.Len())
	return db, order
}

func TestIngestVerdicts(t *testing.T) {
	alphabet := seq.MustAlphabet("abcd")
	e, err := New(streamTestConfig(t, alphabet))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	v := e.IngestString("abababab")
	if v.Status != StatusNewCluster || v.Cluster != 0 {
		t.Fatalf("first ingest = %+v, want new cluster 0", v)
	}
	// A repeat of the same pattern must join, not found a second cluster.
	for i := 0; i < 10; i++ {
		v = e.IngestString("abababababab")
	}
	if v.Status != StatusAccepted || v.Cluster != 0 {
		t.Fatalf("repeat ingest = %+v, want accepted into 0", v)
	}
	// Invalid and empty inputs are per-item rejections.
	if v := e.IngestString("abzz"); v.Status != StatusRejected || v.Cluster != -1 || v.Reason == "" {
		t.Fatalf("invalid-rune ingest = %+v, want rejection with reason", v)
	}
	if v := e.Ingest(nil); v.Status != StatusRejected {
		t.Fatalf("empty ingest = %+v, want rejection", v)
	}
	st := e.Stats()
	if st.Ingested != 13 || st.Rejected != 2 || st.Clusters == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestBatchIndexAligned(t *testing.T) {
	alphabet := seq.MustAlphabet("abcd")
	e, err := New(streamTestConfig(t, alphabet))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	batch := []string{"abababab", "", "abababab", "qqq", "cdcdcdcd"}
	out := e.IngestStrings(batch)
	if len(out) != len(batch) {
		t.Fatalf("got %d verdicts for %d items", len(out), len(batch))
	}
	// The invalid items sit at fixed indices; their verdicts must too.
	if out[1].Status != StatusRejected || out[3].Status != StatusRejected {
		t.Fatalf("rejections misaligned: %+v", out)
	}
	if out[0].Status != StatusNewCluster || out[2].Status != StatusAccepted {
		t.Fatalf("valid items misplaced: %+v", out)
	}
	if out[4].Status != StatusNewCluster {
		t.Fatalf("distinct pattern should found a cluster: %+v", out[4])
	}
}

func TestConsolidationMergesDuplicates(t *testing.T) {
	alphabet := seq.MustAlphabet("abcd")
	cfg := streamTestConfig(t, alphabet)
	cfg.ConsolidateEvery = 1000 // manual consolidation only
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Force two clusters over one pattern by seeding them directly, then
	// feed members; consolidation must collapse them.
	rng := rand.New(rand.NewPCG(3, 3))
	gen := func() string {
		b := make([]byte, 40)
		for i := range b {
			if rng.IntN(4) == 0 {
				b[i] = "abcd"[rng.IntN(2)]
			} else if i%2 == 0 {
				b[i] = 'a'
			} else {
				b[i] = 'b'
			}
		}
		return string(b)
	}
	for i := 0; i < 80; i++ {
		e.IngestString(gen())
	}
	before := e.Stats().Clusters
	e.ConsolidateNow()
	after := e.Stats().Clusters
	if after > before {
		t.Fatalf("consolidation grew clusters: %d -> %d", before, after)
	}
	if after == 0 {
		t.Fatal("consolidation dissolved everything")
	}
	if e.Stats().Consolidations != 1 {
		t.Fatalf("consolidations = %d, want 1", e.Stats().Consolidations)
	}
}

func TestPublishVersionsMonotonic(t *testing.T) {
	alphabet := seq.MustAlphabet("abcd")
	cfg := streamTestConfig(t, alphabet)
	cfg.ConsolidateEvery = 8
	var versions []uint64
	var lastClf *core.Classifier
	cfg.Publish = func(clf *core.Classifier, version uint64) {
		versions = append(versions, version)
		lastClf = clf
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i := 0; i < 33; i++ {
		if i%2 == 0 {
			e.IngestString("abababababab")
		} else {
			e.IngestString("cdcdcdcdcdcd")
		}
	}
	if len(versions) == 0 {
		t.Fatal("no snapshots published")
	}
	for i := 1; i < len(versions); i++ {
		if versions[i] != versions[i-1]+1 {
			t.Fatalf("versions not consecutive: %v", versions)
		}
	}
	if lastClf == nil || lastClf.NumClusters() == 0 {
		t.Fatal("published classifier is empty")
	}
	// The published model must keep working while the engine mutates —
	// it is a frozen clone, not a view.
	frozen := lastClf
	a1, err := frozen.ClassifyString("abababababab")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.IngestString("abababababab")
	}
	a2, err := frozen.ClassifyString("abababababab")
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cluster != a2.Cluster || a1.Similarity != a2.Similarity {
		t.Fatalf("published classifier changed under ingest: %+v vs %+v", a1, a2)
	}
	if st := e.Stats(); st.PublishedVersion != versions[len(versions)-1] {
		t.Fatalf("stats version %d != last published %d", st.PublishedVersion, versions[len(versions)-1])
	}
}

// TestResumeFromPersistedBundle pins the stream durability loop: a
// published snapshot survives a with-trees bundle round trip, seeds a
// fresh engine, and the resumed engine keeps the cluster models, the
// threshold, and the version counter.
func TestResumeFromPersistedBundle(t *testing.T) {
	alphabet := seq.MustAlphabet("abcd")
	cfg := streamTestConfig(t, alphabet)
	cfg.ConsolidateEvery = 8
	var lastClf *core.Classifier
	var lastVersion uint64
	cfg.Publish = func(clf *core.Classifier, version uint64) {
		lastClf, lastVersion = clf, version
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			e.IngestString("abababababab")
		} else {
			e.IngestString("cdcdcdcdcdcd")
		}
	}
	e.ConsolidateNow()
	e.Close()
	if lastClf == nil || lastVersion == 0 {
		t.Fatal("no snapshot published")
	}

	// Persist and reload exactly as the daemon's -stream-persist does.
	var buf bytes.Buffer
	if err := lastClf.SaveBundle(&buf, core.BundleOptions{WithTrees: true, PublishedVersion: lastVersion}); err != nil {
		t.Fatal(err)
	}
	resumed, err := core.LoadClassifierBytes(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.PublishedVersion() != lastVersion {
		t.Fatalf("bundle version %d, want %d", resumed.PublishedVersion(), lastVersion)
	}

	cfg2 := streamTestConfig(t, alphabet)
	cfg2.ConsolidateEvery = 8
	cfg2.Resume = resumed
	var versions []uint64
	cfg2.Publish = func(clf *core.Classifier, version uint64) {
		versions = append(versions, version)
	}
	e2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.Stats()
	if st.Clusters != resumed.NumClusters() {
		t.Fatalf("resumed with %d clusters, want %d", st.Clusters, resumed.NumClusters())
	}
	if st.PublishedVersion != lastVersion {
		t.Fatalf("resumed version %d, want %d", st.PublishedVersion, lastVersion)
	}
	wantThr := resumed.Info().Threshold
	if diff := st.Threshold - wantThr; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("resumed threshold %v, want %v", st.Threshold, wantThr)
	}
	// A sequence from a resumed cluster's family must be accepted into a
	// resumed cluster (ids 0..n-1), not found a duplicate.
	if v := e2.IngestString("abababababab"); v.Status != StatusAccepted || v.Cluster >= resumed.NumClusters() {
		t.Fatalf("resumed engine verdict %+v, want accepted into a resumed cluster", v)
	}
	for i := 0; i < 16; i++ {
		e2.IngestString("cdcdcdcdcdcd")
	}
	if len(versions) == 0 || versions[0] != lastVersion+1 {
		t.Fatalf("post-resume versions %v, want to continue from %d", versions, lastVersion+1)
	}
	// Resume must not have mutated the classifier the caller may still
	// be serving.
	if resumed.NumClusters() != st.Clusters {
		t.Fatal("resume mutated the source classifier")
	}
}

// TestResumeRejectsUnusableBundles: treeless and mismatched snapshots
// must be refused at construction, not half-adopted.
func TestResumeRejectsUnusableBundles(t *testing.T) {
	alphabet := seq.MustAlphabet("abcd")
	cfg := streamTestConfig(t, alphabet)
	cfg.ConsolidateEvery = 4
	var lastClf *core.Classifier
	cfg.Publish = func(clf *core.Classifier, version uint64) { lastClf = clf }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		e.IngestString("abababab")
	}
	e.ConsolidateNow()
	e.Close()

	// Treeless: round-trip without WithTrees strips the trees.
	var buf bytes.Buffer
	if err := lastClf.SaveBundle(&buf, core.BundleOptions{}); err != nil {
		t.Fatal(err)
	}
	treeless, err := core.LoadClassifierBytes(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := streamTestConfig(t, alphabet)
	bad.Resume = treeless
	if _, err := New(bad); err == nil {
		t.Fatal("treeless Resume accepted")
	}

	// Alphabet mismatch.
	bad = streamTestConfig(t, seq.MustAlphabet("wxyz"))
	bad.Resume = lastClf
	if _, err := New(bad); err == nil {
		t.Fatal("alphabet-mismatched Resume accepted")
	}

	// PST shape mismatch would poison consolidation merges.
	bad = streamTestConfig(t, alphabet)
	bad.MaxDepth = cfg.MaxDepth + 3
	bad.Resume = lastClf
	if _, err := New(bad); err == nil {
		t.Fatal("depth-mismatched Resume accepted")
	}
}

// modelBytes serializes every live cluster tree (in creation order) so
// two engines' final models can be compared bit-for-bit.
func modelBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	var buf bytes.Buffer
	for _, c := range e.clusters {
		if err := c.tree.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	return buf.Bytes()
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	db, order := syntheticStream(t, 300)

	run := func(workers int) ([]byte, []Verdict, Stats) {
		cfg := streamTestConfig(t, db.Alphabet)
		cfg.Workers = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		verdicts := make([]Verdict, 0, len(order))
		for _, i := range order {
			verdicts = append(verdicts, e.Ingest(db.Sequences[i].Symbols))
		}
		e.ConsolidateNow()
		return modelBytes(t, e), verdicts, e.Stats()
	}

	m1, v1, s1 := run(1)
	m8, v8, s8 := run(8)
	if !bytes.Equal(m1, m8) {
		t.Fatalf("final models differ between Workers=1 (%d bytes) and Workers=8 (%d bytes)", len(m1), len(m8))
	}
	for i := range v1 {
		if v1[i] != v8[i] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, v1[i], v8[i])
		}
	}
	if s1.Clusters != s8.Clusters || s1.Accepted != s8.Accepted ||
		s1.NewClusters != s8.NewClusters || s1.Rejected != s8.Rejected ||
		s1.Merges != s8.Merges || s1.Dissolves != s8.Dissolves ||
		s1.Threshold != s8.Threshold || s1.PSTNodes != s8.PSTNodes {
		t.Fatalf("stats differ: %+v vs %+v", s1, s8)
	}
}

func TestDeterminismSameSeedSameModel(t *testing.T) {
	db, order := syntheticStream(t, 200)
	run := func() []byte {
		cfg := streamTestConfig(t, db.Alphabet)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for _, i := range order {
			e.Ingest(db.Sequences[i].Symbols)
		}
		return modelBytes(t, e)
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("two identical replays produced different models")
	}
}
