// Package suffixtree implements a generalized suffix tree over symbol
// sequences using Ukkonen's online construction algorithm (Ukkonen 1995,
// paper reference [28]). The suffix tree is the classic structure the
// paper's probabilistic suffix tree descends from (§3); this package
// provides exact substring queries and occurrence counts, and serves as a
// cross-checking oracle for the PST's segment counters in tests.
//
// Multiple sequences are handled with the standard concatenation trick:
// each added sequence is followed by a unique terminator symbol that can
// never appear in a query, so matches never span sequence boundaries.
package suffixtree

import (
	"cluseq/internal/seq"
)

// node is one suffix tree node. Edge labels are stored as [start, end)
// index ranges into the tree's concatenated text; end == infinity marks a
// leaf edge that grows with the text (Ukkonen's open edges).
type node struct {
	start     int
	end       int // exclusive; infinity for open leaf edges
	children  map[int32]*node
	link      *node
	leafCount int // populated by finalize
}

const infinity = int(^uint(0) >> 1)

func (n *node) isLeaf() bool { return n.children == nil }

// edgeLen returns the length of the edge leading to n given the current
// text length.
func (n *node) edgeLen(textLen int) int {
	end := n.end
	if end > textLen {
		end = textLen
	}
	return end - n.start
}

// Tree is a generalized suffix tree under online construction. The zero
// value is not usable; call New.
type Tree struct {
	text []int32 // encoded symbols plus negative per-sequence terminators
	root *node

	// Ukkonen construction state.
	activeNode   *node
	activeEdge   int // index into text of the first symbol of the active edge
	activeLength int
	remainder    int
	needSL       *node

	nSequences int
	finalized  bool
}

// New returns an empty generalized suffix tree.
func New() *Tree {
	root := &node{start: -1, end: -1, children: make(map[int32]*node)}
	return &Tree{root: root, activeNode: root}
}

// Add inserts one sequence (and its unique terminator) into the tree.
func (t *Tree) Add(s []seq.Symbol) {
	for _, sym := range s {
		t.extend(int32(sym))
	}
	t.nSequences++
	t.extend(int32(-t.nSequences)) // unique terminator, never queryable
	t.finalized = false
}

// extend runs one phase of Ukkonen's algorithm, appending symbol c.
func (t *Tree) extend(c int32) {
	pos := len(t.text)
	t.text = append(t.text, c)
	t.needSL = nil
	t.remainder++
	for t.remainder > 0 {
		if t.activeLength == 0 {
			t.activeEdge = pos
		}
		edgeSym := t.text[t.activeEdge]
		next := t.activeNode.children[edgeSym]
		if next == nil {
			// Rule 2: no edge starts with the active symbol — add a leaf.
			t.activeNode.children[edgeSym] = &node{start: pos, end: infinity}
			t.addSuffixLink(t.activeNode)
		} else {
			if el := next.edgeLen(len(t.text)); t.activeLength >= el {
				// Walk down: the active point lies beyond this edge.
				t.activeEdge += el
				t.activeLength -= el
				t.activeNode = next
				continue
			}
			if t.text[next.start+t.activeLength] == c {
				// Rule 3: the symbol is already present; this phase ends.
				t.activeLength++
				t.addSuffixLink(t.activeNode)
				break
			}
			// Rule 2 with split: the edge diverges mid-label.
			split := &node{
				start:    next.start,
				end:      next.start + t.activeLength,
				children: make(map[int32]*node, 2),
			}
			t.activeNode.children[edgeSym] = split
			split.children[c] = &node{start: pos, end: infinity}
			next.start += t.activeLength
			split.children[t.text[next.start]] = next
			t.addSuffixLink(split)
		}
		t.remainder--
		if t.activeNode == t.root && t.activeLength > 0 {
			t.activeLength--
			t.activeEdge = pos - t.remainder + 1
		} else if t.activeNode != t.root {
			if t.activeNode.link != nil {
				t.activeNode = t.activeNode.link
			} else {
				t.activeNode = t.root
			}
		}
	}
}

func (t *Tree) addSuffixLink(n *node) {
	if t.needSL != nil && t.needSL != n {
		t.needSL.link = n
	}
	t.needSL = n
}

// locate walks p from the root and returns the node whose subtree holds all
// occurrences of p, or nil when p does not occur. The second result is how
// many symbols of the final edge label were consumed.
func (t *Tree) locate(p []seq.Symbol) (*node, int) {
	if len(p) == 0 {
		return t.root, 0
	}
	n := t.root
	i := 0
	for i < len(p) {
		child := n.children[int32(p[i])]
		if child == nil {
			return nil, 0
		}
		el := child.edgeLen(len(t.text))
		j := 0
		for j < el && i < len(p) {
			if t.text[child.start+j] != int32(p[i]) {
				return nil, 0
			}
			i++
			j++
		}
		if i == len(p) {
			return child, j
		}
		n = child
	}
	return n, 0
}

// Contains reports whether the segment p occurs in any added sequence.
func (t *Tree) Contains(p []seq.Symbol) bool {
	n, _ := t.locate(p)
	return n != nil
}

// Count returns the number of occurrences of segment p across all added
// sequences. The empty segment occurs once per symbol plus once per
// terminator; callers interested in symbol positions should avoid querying
// it.
func (t *Tree) Count(p []seq.Symbol) int {
	t.finalize()
	n, _ := t.locate(p)
	if n == nil {
		return 0
	}
	return n.leafCount
}

// finalize computes per-node leaf counts. It runs once after the most
// recent Add; construction invalidates it.
func (t *Tree) finalize() {
	if t.finalized {
		return
	}
	// Iterative post-order accumulation; recursion depth can reach the
	// longest repeated substring, which is unbounded for adversarial input.
	type frame struct {
		n       *node
		visited bool
	}
	stack := []frame{{t.root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.n.isLeaf() {
			f.n.leafCount = 1
			continue
		}
		if f.visited {
			total := 0
			for _, c := range f.n.children {
				total += c.leafCount
			}
			f.n.leafCount = total
			continue
		}
		stack = append(stack, frame{f.n, true})
		for _, c := range f.n.children {
			stack = append(stack, frame{c, false})
		}
	}
	t.finalized = true
}

// NumNodes returns the total number of nodes, including the root.
func (t *Tree) NumNodes() int {
	count := 0
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, c := range n.children {
			stack = append(stack, c)
		}
	}
	return count
}

// LongestCommonSegment returns one longest segment common to the two
// sequences, computed through a generalized suffix tree of both (the
// classic linear-space LCS-by-suffix-tree construction): the deepest node
// whose subtree contains suffixes of each sequence.
func LongestCommonSegment(a, b []seq.Symbol) []seq.Symbol {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	t := New()
	t.Add(a)
	t.Add(b)
	// A leaf belongs to sequence 0 or 1 according to which terminator its
	// edge (eventually) contains. Terminators are -1 and -2 at positions
	// len(a) and len(a)+1+len(b) of the concatenated text.
	term0 := len(a)
	var best []seq.Symbol
	label := make([]seq.Symbol, 0, len(a))
	// Post-order DFS carrying the running root-to-node label; a node whose
	// subtree holds suffixes of both sequences (mask 3) and whose label is
	// terminator-free is a common segment.
	var rec func(n *node) int
	rec = func(n *node) int {
		if n.isLeaf() {
			// Leaves created during the first sequence's phases (edge label
			// starting at or before its terminator) are its suffixes.
			if n.start <= term0 {
				return 1
			}
			return 2
		}
		m := 0
		for _, c := range n.children {
			// Push c's edge label (stopping at any terminator: labels
			// containing one cannot be common segments, and unique
			// terminators never label internal edges anyway).
			end := c.end
			if end > len(t.text) {
				end = len(t.text)
			}
			pushed := 0
			clean := true
			for _, sym := range t.text[c.start:end] {
				if sym < 0 {
					clean = false
					break
				}
				label = append(label, seq.Symbol(sym))
				pushed++
			}
			cm := rec(c)
			m |= cm
			if clean && cm == 3 && len(label) > len(best) {
				best = append(best[:0:0], label...)
			}
			label = label[:len(label)-pushed]
		}
		return m
	}
	rec(t.root)
	return best
}

// DistinctSubstrings returns the number of distinct non-empty segments
// (terminators excluded from queries but included in edges are avoided by
// construction only when sequences avoid them) across all added sequences
// of a single-sequence tree. For generalized trees the count includes
// terminator-containing suffix fragments and is primarily useful for
// single-sequence analyses and tests.
func (t *Tree) DistinctSubstrings() int {
	textLen := len(t.text)
	total := 0
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n != t.root {
			total += n.edgeLen(textLen)
		}
		for _, c := range n.children {
			stack = append(stack, c)
		}
	}
	return total
}
