package suffixtree

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"cluseq/internal/seq"
)

func encode(t *testing.T, a *seq.Alphabet, s string) []seq.Symbol {
	t.Helper()
	syms, err := a.Encode(s)
	if err != nil {
		t.Fatalf("encode %q: %v", s, err)
	}
	return syms
}

// bruteCount counts overlapping occurrences of p in s.
func bruteCount(s, p string) int {
	if p == "" || len(p) > len(s) {
		return 0
	}
	count := 0
	for i := 0; i+len(p) <= len(s); i++ {
		if s[i:i+len(p)] == p {
			count++
		}
	}
	return count
}

func TestContainsBasic(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := New()
	tr.Add(encode(t, a, "abab"))
	for _, want := range []string{"a", "b", "ab", "ba", "aba", "bab", "abab"} {
		if !tr.Contains(encode(t, a, want)) {
			t.Errorf("Contains(%q) = false, want true", want)
		}
	}
	for _, absent := range []string{"aa", "bb", "baba", "ababa"} {
		if tr.Contains(encode(t, a, absent)) {
			t.Errorf("Contains(%q) = true, want false", absent)
		}
	}
	if !tr.Contains(nil) {
		t.Error("empty segment must always be contained")
	}
}

func TestCountBasic(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := New()
	tr.Add(encode(t, a, "aaaa"))
	cases := map[string]int{"a": 4, "aa": 3, "aaa": 2, "aaaa": 1, "b": 0, "ab": 0}
	for p, want := range cases {
		if got := tr.Count(encode(t, a, p)); got != want {
			t.Errorf("Count(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestGeneralizedCountAcrossSequences(t *testing.T) {
	a := seq.MustAlphabet("abc")
	tr := New()
	docs := []string{"abcabc", "cabc", "bbb"}
	for _, d := range docs {
		tr.Add(encode(t, a, d))
	}
	check := func(p string) {
		want := 0
		for _, d := range docs {
			want += bruteCount(d, p)
		}
		if got := tr.Count(encode(t, a, p)); got != want {
			t.Errorf("Count(%q) = %d, want %d", p, got, want)
		}
	}
	for _, p := range []string{"a", "b", "c", "ab", "bc", "abc", "cab", "bb", "bbb", "abcabc", "ccc"} {
		check(p)
	}
}

func TestMatchesNeverSpanSequences(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := New()
	tr.Add(encode(t, a, "aa"))
	tr.Add(encode(t, a, "aa"))
	// "aaaa" exists only across the boundary; it must not be found.
	if tr.Contains(encode(t, a, "aaaa")) {
		t.Fatal("match spanned a sequence boundary")
	}
	if got := tr.Count(encode(t, a, "aa")); got != 2 {
		t.Fatalf("Count(aa) = %d, want 2", got)
	}
}

func TestAddAfterCountInvalidatesFinalize(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := New()
	tr.Add(encode(t, a, "ab"))
	if got := tr.Count(encode(t, a, "ab")); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	tr.Add(encode(t, a, "ab"))
	if got := tr.Count(encode(t, a, "ab")); got != 2 {
		t.Fatalf("Count after second Add = %d, want 2 (stale finalize?)", got)
	}
}

// TestCountMatchesBruteForce drives random texts and patterns through the
// tree and compares against the naive scan.
func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	alphabets := []string{"ab", "abc", "abcd"}
	for trial := 0; trial < 60; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		a := seq.MustAlphabet(alpha)
		n := 1 + rng.IntN(60)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alpha[rng.IntN(len(alpha))])
		}
		text := sb.String()
		tr := New()
		tr.Add(encode(t, a, text))
		for q := 0; q < 30; q++ {
			plen := 1 + rng.IntN(6)
			var pb strings.Builder
			for i := 0; i < plen; i++ {
				pb.WriteByte(alpha[rng.IntN(len(alpha))])
			}
			p := pb.String()
			if got, want := tr.Count(encode(t, a, p)), bruteCount(text, p); got != want {
				t.Fatalf("text %q pattern %q: Count = %d, want %d", text, p, got, want)
			}
		}
		// Every substring must be contained.
		for q := 0; q < 10; q++ {
			i := rng.IntN(len(text))
			j := i + 1 + rng.IntN(len(text)-i)
			if !tr.Contains(encode(t, a, text[i:j])) {
				t.Fatalf("text %q: substring %q not found", text, text[i:j])
			}
		}
	}
}

// TestDistinctSubstrings verifies the edge-length sum against a brute-force
// enumeration. For a single sequence of length n, the tree's text is s plus
// one terminator, contributing exactly n+1 extra distinct
// terminator-containing suffixes.
func TestDistinctSubstrings(t *testing.T) {
	brute := func(s string) int {
		set := make(map[string]bool)
		for i := 0; i < len(s); i++ {
			for j := i + 1; j <= len(s); j++ {
				set[s[i:j]] = true
			}
		}
		return len(set)
	}
	a := seq.MustAlphabet("abc")
	for _, s := range []string{"a", "aa", "ab", "abcabc", "aabbcc", "abababab", "ccccc"} {
		tr := New()
		tr.Add(encode(t, a, s))
		got := tr.DistinctSubstrings() - (len(s) + 1)
		if want := brute(s); got != want {
			t.Errorf("DistinctSubstrings(%q) = %d, want %d", s, got, want)
		}
	}
}

// TestSuffixesAllPresent is the defining suffix tree property: every suffix
// of every added sequence is contained.
func TestSuffixesAllPresent(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		syms := make([]seq.Symbol, len(raw))
		for i, b := range raw {
			syms[i] = seq.Symbol(b % 4)
		}
		tr := New()
		tr.Add(syms)
		for i := range syms {
			if !tr.Contains(syms[i:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNumNodesLinear(t *testing.T) {
	// A suffix tree of a text of length n has at most 2n nodes (plus root
	// and terminator effects). Check the bound holds for a pathological
	// input.
	a := seq.MustAlphabet("ab")
	s := strings.Repeat("ab", 500)
	tr := New()
	tr.Add(encode(t, a, s))
	n := len(s) + 1 // including terminator
	if got := tr.NumNodes(); got > 2*n {
		t.Fatalf("NumNodes = %d, exceeds 2n = %d", got, 2*n)
	}
}

// bruteLCS is the O(n·m) longest-common-substring DP.
func bruteLCS(a, b string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

func TestLongestCommonSegmentBasic(t *testing.T) {
	a := seq.MustAlphabet("abcdefxyz")
	cases := []struct {
		x, y, want string
	}{
		{"abcdef", "zzabczz", "abc"},
		{"abcdef", "xyz", ""},
		{"aaaa", "aa", "aa"},
		{"abab", "baba", "aba"}, // or bab; same length
	}
	for _, c := range cases {
		x := encode(t, a, c.x)
		y := encode(t, a, c.y)
		got := LongestCommonSegment(x, y)
		if len(got) != len(c.want) {
			t.Errorf("LCS(%q,%q) = %q (len %d), want length %d",
				c.x, c.y, a.Decode(got), len(got), len(c.want))
		}
		// The result must be a substring of both.
		if len(got) > 0 {
			gs := a.Decode(got)
			if !strings.Contains(c.x, gs) || !strings.Contains(c.y, gs) {
				t.Errorf("LCS(%q,%q) = %q is not common", c.x, c.y, gs)
			}
		}
	}
	if got := LongestCommonSegment(nil, encode(t, a, "abc")); got != nil {
		t.Errorf("LCS with empty input = %v, want nil", got)
	}
}

func TestLongestCommonSegmentMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	alpha := "abc"
	a := seq.MustAlphabet(alpha)
	for trial := 0; trial < 60; trial++ {
		mk := func() string {
			n := 1 + rng.IntN(40)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(alpha[rng.IntN(len(alpha))])
			}
			return sb.String()
		}
		x, y := mk(), mk()
		got := LongestCommonSegment(encode(t, a, x), encode(t, a, y))
		want := bruteLCS(x, y)
		if len(got) != want {
			t.Fatalf("LCS(%q,%q) length = %d, want %d (%q)", x, y, len(got), want, a.Decode(got))
		}
		if len(got) > 0 {
			gs := a.Decode(got)
			if !strings.Contains(x, gs) || !strings.Contains(y, gs) {
				t.Fatalf("LCS(%q,%q) = %q not common", x, y, gs)
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Contains([]seq.Symbol{0}) {
		t.Fatal("empty tree should contain nothing")
	}
	if got := tr.Count([]seq.Symbol{0}); got != 0 {
		t.Fatalf("Count on empty tree = %d", got)
	}
	if tr.NumNodes() != 1 {
		t.Fatalf("empty tree NumNodes = %d, want 1 (root)", tr.NumNodes())
	}
}
