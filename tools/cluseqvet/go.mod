module cluseq/tools/cluseqvet

go 1.22
