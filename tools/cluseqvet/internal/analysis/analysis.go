// Package analysis is a deliberately small, dependency-free stand-in for
// golang.org/x/tools/go/analysis. The build environment for this repo is
// offline (no module proxy), so cluseqvet carries its own Analyzer/Pass
// contract, its own package loader (go list -export + the gc export-data
// importer), and its own `go vet -vettool` protocol implementation. The
// shapes mirror x/tools closely enough that the analyzers could be ported
// to the real framework by changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a single package via its
// Pass and reports diagnostics; cross-package state flows through the
// shared Index (facts).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, already positioned.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries everything one analyzer needs to inspect one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Dirs     *Directives
	Index    *Index

	diags *[]Diagnostic
}

// Reportf records a diagnostic unless a matching //cluseq:allow waiver
// covers the position. Waiver bookkeeping (used/unused) lives here so
// individual analyzers never have to know the waiver syntax.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Dirs != nil && p.Dirs.waive(p.Analyzer.Name, pos, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Dirs       *Directives
}

// Run applies every analyzer to pkg, then reports per-analyzer waiver
// hygiene (empty reasons, unused waivers). Diagnostics come back sorted
// by position for stable output.
func Run(pkg *Package, analyzers []*Analyzer, index *Index) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Dirs:     pkg.Dirs,
			Index:    index,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	if pkg.Dirs != nil {
		names := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			names[a.Name] = true
		}
		diags = append(diags, pkg.Dirs.hygiene(names)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
