// Package analysistest runs one analyzer over fixture packages rooted
// at testdata/src and checks its diagnostics against // want comments,
// in the manner of golang.org/x/tools/go/analysis/analysistest (which
// this offline build cannot depend on).
//
// A fixture file marks expectations on the line they occur:
//
//	x := seen[k] // want `map access in hot path`
//
// Each backquoted or double-quoted argument is a regexp; every
// diagnostic must match an expectation on its line and every
// expectation must be matched by some diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cluseq/tools/cluseqvet/internal/analysis"
)

// Run analyzes the fixture packages at testdata/src/<path> with the
// given analyzers (sharing one facts index across all of them, in
// order) and checks // want expectations in each listed package.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	index := analysis.NewIndex()
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		index.AddAnnotations(pkg.ImportPath, pkg.Dirs.Annotations())
		diags, err := analysis.Run(pkg, analyzers, index)
		if err != nil {
			t.Fatalf("running on %s: %v", path, err)
		}
		check(t, l.fset, pkg, diags)
	}
}

// check diffs diagnostics against the package's want expectations.
func check(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		fileName := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				k := key{fileName, fset.Position(c.Pos()).Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
			continue
		}
		wants[k][matched] = nil
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				leftover = append(leftover, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re))
			}
		}
	}
	sort.Strings(leftover)
	for _, msg := range leftover {
		t.Error(msg)
	}
}

// parseWant extracts the regexp arguments of a `// want ...` comment.
// The marker may trail other comment text (`//cluseq:allow x: // want
// ...`) so fixtures can assert on waiver-hygiene diagnostics.
func parseWant(text string) ([]string, bool) {
	const marker = "// want "
	var body string
	if b, ok := strings.CutPrefix(text, marker); ok {
		body = b
	} else if i := strings.Index(text, " "+marker); i >= 0 {
		body = text[i+1+len(marker):]
	} else {
		return nil, false
	}
	var patterns []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return patterns, true
			}
			patterns = append(patterns, rest[1:1+end])
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			// Find the closing quote by expanding prefixes until Unquote
			// succeeds (escapes make a plain IndexByte wrong).
			parsed := false
			for i := 1; i < len(rest); i++ {
				if rest[i] != '"' {
					continue
				}
				if u, err := strconv.Unquote(rest[:i+1]); err == nil {
					patterns = append(patterns, u)
					rest = strings.TrimSpace(rest[i+1:])
					parsed = true
					break
				}
			}
			if !parsed {
				return patterns, true
			}
		default:
			return patterns, true
		}
	}
	return patterns, true
}

// loader loads fixture packages from a src root, resolving fixture
// imports recursively and everything else through gc export data.
type loader struct {
	root  string
	fset  *token.FileSet
	cache map[string]*analysis.Package
	tcach map[string]*types.Package
	std   types.Importer
	exp   map[string]string
}

func newLoader(root string) *loader {
	l := &loader{
		root:  root,
		fset:  token.NewFileSet(),
		cache: map[string]*analysis.Package{},
		tcach: map[string]*types.Package{},
		exp:   map[string]string{},
	}
	l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exp[path]
		if !ok {
			out, err := exec.Command("go", "list", "-e", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				return nil, fmt.Errorf("go list -export %s: %v", path, err)
			}
			file = strings.TrimSpace(string(out))
			if file == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			l.exp[path] = file
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer over fixtures-then-stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.tcach[path]; ok {
		return p, nil
	}
	if dirExists(filepath.Join(l.root, path)) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.tcach[path] = p
	return p, nil
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg := &analysis.Package{
		ImportPath: path,
		Fset:       l.fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dirs:       analysis.ParseDirectives(l.fset, files),
	}
	l.cache[path] = pkg
	l.tcach[path] = tpkg
	return pkg, nil
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
