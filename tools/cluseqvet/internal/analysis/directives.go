package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive names accepted in function doc comments. Each marks the
// function as subject to one analyzer's contract.
var annotationNames = map[string]bool{
	"hotpath":       true, // hotpath analyzer: no logs/locks/maps/allocation
	"deterministic": true, // determinism analyzer: no wall clock / rand / unordered map ranges
	"fanout":        true, // poolsafety analyzer: closure args follow the indexed-write rule
}

// waiver is one //cluseq:allow comment: it silences diagnostics of one
// named analyzer within a source span (the statement it is attached to).
type waiver struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int
	// span covers the statement the waiver annotates: the largest
	// statement starting on the waiver's line (end-of-line form), or the
	// first statement starting on the following line (standalone form).
	lo, hi token.Pos
	used   bool
}

// Directives is the parsed //cluseq: state of one package.
type Directives struct {
	fset *token.FileSet
	// annotated maps a function key ("Func" or "Recv.Func") to its
	// directive set for this package.
	annotated map[string]map[string]bool
	// funcs maps *ast.FuncDecl to the same directive sets, for analyzers
	// walking declarations.
	funcs map[*ast.FuncDecl]map[string]bool
	// waivers in file order.
	waivers []*waiver
	// problems are directive-syntax findings (unknown names, misplaced
	// annotations) reported by the driver, not by any one analyzer.
	problems []Diagnostic
}

// FuncKey returns the lookup key for a declared function: "Name" for
// package functions, "Recv.Name" for methods (pointer receivers strip
// the star).
func FuncKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// Annotated reports whether the named function in this package carries
// the directive.
func (d *Directives) Annotated(key, directive string) bool {
	return d != nil && d.annotated[key][directive]
}

// FuncDirectives returns the directive set of a declaration (nil if
// unannotated).
func (d *Directives) FuncDirectives(decl *ast.FuncDecl) map[string]bool {
	if d == nil {
		return nil
	}
	return d.funcs[decl]
}

// Annotations returns a copy of the package's key → directive-set map,
// for export into the cross-package Index.
func (d *Directives) Annotations() map[string][]string {
	out := make(map[string][]string, len(d.annotated))
	for key, set := range d.annotated {
		for dir := range set {
			out[key] = append(out[key], dir)
		}
	}
	return out
}

// Problems returns directive-syntax diagnostics (driver-level).
func (d *Directives) Problems() []Diagnostic {
	if d == nil {
		return nil
	}
	return d.problems
}

// waive returns true (and marks the waiver used) when a diagnostic of
// the named analyzer at pos falls inside a matching waiver's span.
func (d *Directives) waive(analyzer string, pos token.Pos, position token.Position) bool {
	for _, w := range d.waivers {
		if w.analyzer != analyzer || w.reason == "" {
			continue
		}
		if w.lo.IsValid() && pos >= w.lo && pos <= w.hi {
			w.used = true
			return true
		}
		// End-of-line waivers also cover same-line diagnostics even when
		// no enclosing statement was resolved (e.g. declarations).
		if position.Line == w.line && position.Filename == d.fset.Position(w.pos).Filename {
			w.used = true
			return true
		}
	}
	return false
}

// hygiene reports waiver problems attributable to a specific analyzer in
// the running set: empty reasons and waivers that silenced nothing.
func (d *Directives) hygiene(running map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, w := range d.waivers {
		if !running[w.analyzer] {
			continue
		}
		switch {
		case w.reason == "":
			out = append(out, Diagnostic{
				Analyzer: w.analyzer,
				Pos:      d.fset.Position(w.pos),
				Message:  fmt.Sprintf("//cluseq:allow %s requires a reason after the colon", w.analyzer),
			})
		case !w.used:
			out = append(out, Diagnostic{
				Analyzer: w.analyzer,
				Pos:      d.fset.Position(w.pos),
				Message:  fmt.Sprintf("unused //cluseq:allow waiver for %s", w.analyzer),
			})
		}
	}
	return out
}

// ParseDirectives scans the package's comments for //cluseq: directives,
// attaches annotations to their functions, and resolves waiver spans.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:      fset,
		annotated: map[string]map[string]bool{},
		funcs:     map[*ast.FuncDecl]map[string]bool{},
	}
	for _, f := range files {
		// Doc-comment annotations.
		docComments := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				name, rest, isDirective := splitDirective(c.Text)
				if !isDirective {
					continue
				}
				docComments[c] = true
				if name == "allow" {
					d.problems = append(d.problems, Diagnostic{
						Analyzer: "cluseqvet",
						Pos:      fset.Position(c.Pos()),
						Message:  "//cluseq:allow belongs on the waived statement, not in a function doc comment",
					})
					continue
				}
				if !annotationNames[name] {
					d.problems = append(d.problems, Diagnostic{
						Analyzer: "cluseqvet",
						Pos:      fset.Position(c.Pos()),
						Message:  fmt.Sprintf("unknown //cluseq: directive %q", name),
					})
					continue
				}
				if rest != "" {
					d.problems = append(d.problems, Diagnostic{
						Analyzer: "cluseqvet",
						Pos:      fset.Position(c.Pos()),
						Message:  fmt.Sprintf("//cluseq:%s takes no arguments", name),
					})
					continue
				}
				key := FuncKey(fd)
				if d.annotated[key] == nil {
					d.annotated[key] = map[string]bool{}
				}
				d.annotated[key][name] = true
				if d.funcs[fd] == nil {
					d.funcs[fd] = map[string]bool{}
				}
				d.funcs[fd][name] = true
			}
		}
		// Waivers and stray directives everywhere else.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if docComments[c] {
					continue
				}
				name, _, isDirective := splitDirective(c.Text)
				if !isDirective {
					continue
				}
				if name != "allow" {
					if annotationNames[name] {
						d.problems = append(d.problems, Diagnostic{
							Analyzer: "cluseqvet",
							Pos:      fset.Position(c.Pos()),
							Message:  fmt.Sprintf("//cluseq:%s must be the doc comment of a function declaration", name),
						})
					} else {
						d.problems = append(d.problems, Diagnostic{
							Analyzer: "cluseqvet",
							Pos:      fset.Position(c.Pos()),
							Message:  fmt.Sprintf("unknown //cluseq: directive %q", name),
						})
					}
					continue
				}
				w := parseWaiver(c, fset)
				if w == nil {
					d.problems = append(d.problems, Diagnostic{
						Analyzer: "cluseqvet",
						Pos:      fset.Position(c.Pos()),
						Message:  `malformed waiver: want "//cluseq:allow <analyzer>: <reason>"`,
					})
					continue
				}
				d.waivers = append(d.waivers, w)
			}
		}
		d.resolveSpans(f)
	}
	return d
}

// splitDirective decomposes "//cluseq:name rest". Directive comments have
// no space after "//" (the Go directive convention).
func splitDirective(text string) (name, rest string, ok bool) {
	const prefix = "//cluseq:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	body := text[len(prefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// parseWaiver parses "//cluseq:allow <analyzer>: <reason>". A missing
// reason yields a waiver with reason "" (the hygiene pass rejects it —
// keeping the analyzer attribution lets the diagnostic name the right
// check). A missing analyzer or colon is malformed (nil).
func parseWaiver(c *ast.Comment, fset *token.FileSet) *waiver {
	_, rest, _ := splitDirective(c.Text)
	name, reason, found := strings.Cut(rest, ":")
	name = strings.TrimSpace(name)
	if !found || name == "" || strings.ContainsAny(name, " \t") {
		return nil
	}
	// Fixtures append "// want ..." expectations to waiver comments;
	// they are not part of the reason.
	if i := strings.Index(reason, "// want"); i >= 0 {
		reason = reason[:i]
	}
	return &waiver{
		analyzer: name,
		reason:   strings.TrimSpace(reason),
		pos:      c.Pos(),
		line:     fset.Position(c.Pos()).Line,
	}
}

// resolveSpans attaches each waiver in f to a statement: the largest
// statement starting on the waiver's own line (end-of-line form,
// `stmt // cluseq:allow ...`), or failing that the first statement
// starting on the immediately following line (standalone form).
func (d *Directives) resolveSpans(f *ast.File) {
	type stmtSpan struct{ lo, hi token.Pos }
	startLine := map[int]stmtSpan{}
	ast.Inspect(f, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if _, isBlock := s.(*ast.BlockStmt); isBlock {
			return true
		}
		line := d.fset.Position(s.Pos()).Line
		if cur, ok := startLine[line]; !ok || s.End()-s.Pos() > cur.hi-cur.lo {
			startLine[line] = stmtSpan{s.Pos(), s.End()}
		}
		return true
	})
	fileName := d.fset.Position(f.Pos()).Filename
	for _, w := range d.waivers {
		if w.lo.IsValid() || d.fset.Position(w.pos).Filename != fileName {
			continue
		}
		if sp, ok := startLine[w.line]; ok && sp.lo < w.pos {
			w.lo, w.hi = sp.lo, sp.hi
			continue
		}
		if sp, ok := startLine[w.line+1]; ok {
			w.lo, w.hi = sp.lo, sp.hi
		}
	}
}
