package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) *Directives {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return ParseDirectives(fset, []*ast.File{f})
}

func TestDirectiveProblems(t *testing.T) {
	const src = `package p

//cluseq:hotpath
func hot() {}

//cluseq:bogus
func other() {}

func body() {
	//cluseq:deterministic
	x := 1
	_ = x
	//cluseq:allow hotpath missing colon entirely
	y := 2
	_ = y
}
`
	d := parseSrc(t, src)
	if !d.Annotated("hot", "hotpath") {
		t.Error("hot() not recorded as hotpath-annotated")
	}
	var msgs []string
	for _, p := range d.Problems() {
		msgs = append(msgs, p.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		`unknown //cluseq: directive "bogus"`,
		"//cluseq:deterministic must be the doc comment of a function declaration",
		"malformed waiver",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing problem %q in:\n%s", want, joined)
		}
	}
	if len(msgs) != 3 {
		t.Errorf("want exactly 3 problems, got %d:\n%s", len(msgs), joined)
	}
}

func TestMethodKeys(t *testing.T) {
	const src = `package p

type T struct{}

//cluseq:hotpath
func (t *T) Scan() {}

//cluseq:deterministic
func (t T) Phase() {}
`
	d := parseSrc(t, src)
	if !d.Annotated("T.Scan", "hotpath") {
		t.Error("pointer-receiver method key T.Scan not annotated")
	}
	if !d.Annotated("T.Phase", "deterministic") {
		t.Error("value-receiver method key T.Phase not annotated")
	}
}
