package analysis

import (
	"bytes"
	"encoding/gob"
	"os"
	"sort"
)

// MetricReg records one metric-name registration site, for the
// obscontract uniqueness check. Site strings ("file:line") double as
// identity so re-analysis of the same source (e.g. the test variant of a
// package under go vet) does not self-collide.
type MetricReg struct {
	Name string
	Kind string // counter | gauge | histogram
	Pkg  string
	Site string
}

// Facts is the serializable cross-package state: which functions carry
// which directives, and which metric names are registered where. Each
// package's exported facts are the union of its own and all its
// dependencies', so any package sees the full transitive picture.
type Facts struct {
	Annotations map[string]map[string][]string // pkg path → func key → directives
	Metrics     []MetricReg
}

// Index is the in-memory facts store shared by one analysis run.
type Index struct {
	ann     map[string]map[string]map[string]bool
	metrics map[string]map[string]MetricReg // name → site → registration
}

func NewIndex() *Index {
	return &Index{
		ann:     map[string]map[string]map[string]bool{},
		metrics: map[string]map[string]MetricReg{},
	}
}

// Annotated reports whether pkgPath's function key carries directive.
func (x *Index) Annotated(pkgPath, key, directive string) bool {
	return x.ann[pkgPath][key][directive]
}

// AddAnnotations merges one package's key → directives map.
func (x *Index) AddAnnotations(pkgPath string, ann map[string][]string) {
	if len(ann) == 0 {
		return
	}
	pkg := x.ann[pkgPath]
	if pkg == nil {
		pkg = map[string]map[string]bool{}
		x.ann[pkgPath] = pkg
	}
	for key, dirs := range ann {
		set := pkg[key]
		if set == nil {
			set = map[string]bool{}
			pkg[key] = set
		}
		for _, d := range dirs {
			set[d] = true
		}
	}
}

// Metrics returns all known registrations of a metric name.
func (x *Index) Metrics(name string) []MetricReg {
	sites := x.metrics[name]
	out := make([]MetricReg, 0, len(sites))
	for _, r := range sites {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// AddMetric records a registration; idempotent per site.
func (x *Index) AddMetric(r MetricReg) {
	sites := x.metrics[r.Name]
	if sites == nil {
		sites = map[string]MetricReg{}
		x.metrics[r.Name] = sites
	}
	sites[r.Site] = r
}

// Export snapshots the index as Facts (the union view).
func (x *Index) Export() *Facts {
	f := &Facts{Annotations: map[string]map[string][]string{}}
	for pkg, keys := range x.ann {
		m := map[string][]string{}
		for key, dirs := range keys {
			var list []string
			for d := range dirs {
				list = append(list, d)
			}
			sort.Strings(list)
			m[key] = list
		}
		f.Annotations[pkg] = m
	}
	for _, sites := range x.metrics {
		for _, r := range sites {
			f.Metrics = append(f.Metrics, r)
		}
	}
	sort.Slice(f.Metrics, func(i, j int) bool {
		if f.Metrics[i].Name != f.Metrics[j].Name {
			return f.Metrics[i].Name < f.Metrics[j].Name
		}
		return f.Metrics[i].Site < f.Metrics[j].Site
	})
	return f
}

// Import merges previously exported facts.
func (x *Index) Import(f *Facts) {
	if f == nil {
		return
	}
	for pkg, ann := range f.Annotations {
		x.AddAnnotations(pkg, ann)
	}
	for _, r := range f.Metrics {
		x.AddMetric(r)
	}
}

// WriteFacts serializes the index to path (the vet .vetx file).
func (x *Index) WriteFacts(path string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x.Export()); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// ReadFacts merges a serialized facts file into the index. Empty files
// (packages outside the analyzed module) are fine.
func (x *Index) ReadFacts(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	var f Facts
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return err
	}
	x.Import(&f)
	return nil
}
