package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Module     *struct{ Path string }
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load lists, parses, and type-checks the packages matched by patterns,
// running `go list` in dir. Only packages belonging to dir's main module
// are returned (in dependency order); their dependencies are consumed as
// compiled export data, which `go list -export` produces from the local
// build cache — no network, no source re-typechecking.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Name,Export,Module,Standard,GoFiles,Imports,Error,DepsErrors"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := map[string]*listPackage{}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		for _, de := range p.DepsErrors {
			if de != nil {
				return nil, fmt.Errorf("go list: %s: dependency error: %s", p.ImportPath, de.Err)
			}
		}
		byPath[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}

	modPath, err := mainModule(dir)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	for path, p := range byPath {
		if p.Export != "" {
			exports[path] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	// -deps emits dependencies before dependents, so filtering `order`
	// preserves dependency order among the module's own packages.
	var pkgs []*Package
	for _, path := range order {
		p := byPath[path]
		if p.Standard || p.Module == nil || p.Module.Path != modPath || p.Name == "" {
			continue
		}
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func mainModule(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m in %s: %v", dir, err)
	}
	return strings.TrimSpace(string(out)), nil
}

// typeCheck parses and checks one source package against export data.
func typeCheck(fset *token.FileSet, imp types.Importer, p *listPackage) (*Package, error) {
	var files []*ast.File
	names := append([]string(nil), p.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dirs:       ParseDirectives(fset, files),
	}, nil
}

// NewInfo allocates the types.Info maps analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// newExportImporter returns a types.Importer that resolves import paths
// through gc export-data files. Paths without a known export file fall
// back to `go list -export` one package at a time (cached), which serves
// the analysistest fixtures' stdlib imports.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			f, err := listExport(path)
			if err != nil {
				return nil, err
			}
			exports[path] = f
			file = f
		}
		return os.Open(file)
	})
	return base
}

// listExport asks the go tool for one package's export file.
func listExport(path string) (string, error) {
	out, err := exec.Command("go", "list", "-e", "-export", "-f", "{{if .Error}}ERR {{.Error.Err}}{{else}}{{.Export}}{{end}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	s := strings.TrimSpace(string(out))
	if strings.HasPrefix(s, "ERR ") || s == "" {
		return "", fmt.Errorf("no export data for %q: %s", path, strings.TrimPrefix(s, "ERR "))
	}
	return s, nil
}
