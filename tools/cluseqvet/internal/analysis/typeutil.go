package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the statically-known function or method a call
// invokes. It returns nil for dynamic calls (func values, interface
// methods), conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.F
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// CalleeKey returns the package path and directive key ("Func" or
// "Recv.Func") of a resolved callee.
func CalleeKey(f *types.Func) (pkgPath, key string) {
	if f.Pkg() != nil {
		pkgPath = f.Pkg().Path()
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return pkgPath, f.Name()
	}
	return pkgPath, recvTypeName(sig.Recv().Type()) + "." + f.Name()
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return strings.TrimPrefix(types.TypeString(t, nil), "*")
}

// IsMap reports whether e's type is a map.
func IsMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// IsTestFile reports whether the file's position name ends in _test.go.
// Analyzers skip test files: tests may legitimately use the constructs
// the contracts forbid (e.g. serial pools with captured accumulators).
func IsTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// ObjOf resolves an identifier to its object via Uses or Defs.
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
