// Package determinism enforces the reproducibility contract of
// //cluseq:deterministic functions: the §4 clustering phases must yield
// bit-identical results for a fixed seed at any Workers count. Such a
// function may not read the wall clock (time.Now), may not draw from the
// global math/rand source (the engine's seeded *rand.Rand is fine), and
// may only range over a map when the iteration order cannot leak into
// the result: every statement in the loop body must be order-independent
// (key-indexed writes, integer accumulation, collecting keys into a
// slice that is sorted after the loop).
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"cluseq/tools/cluseqvet/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "check //cluseq:deterministic functions for wall-clock, global rand, and order-dependent map iteration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Dirs.FuncDirectives(fd)["deterministic"] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// sortedAfter records "slice expression S has a sort.X/slices.SortX
	// call at position P" so map-range loops that collect keys can be
	// cleared by a later sort.
	type sortCall struct {
		expr string
		pos  token.Pos
	}
	var sorts []sortCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.Callee(pass.Info, call)
		if f == nil || f.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		switch f.Pkg().Path() {
		case "sort", "slices":
			sorts = append(sorts, sortCall{types.ExprString(call.Args[0]), call.Pos()})
		}
		return true
	})
	sortedAfter := func(e ast.Expr, after token.Pos) bool {
		s := types.ExprString(e)
		for _, sc := range sorts {
			if sc.expr == s && sc.pos > after {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			f := analysis.Callee(pass.Info, n)
			if f == nil || f.Pkg() == nil {
				return true
			}
			pkg := f.Pkg().Path()
			sig, _ := f.Type().(*types.Signature)
			pkgLevel := sig == nil || sig.Recv() == nil
			switch {
			case pkg == "time" && f.Name() == "Now":
				pass.Reportf(n.Pos(), "time.Now in deterministic function")
			case (pkg == "math/rand" || pkg == "math/rand/v2") && pkgLevel:
				pass.Reportf(n.Pos(), "package-level %s.%s in deterministic function (use the engine's seeded *rand.Rand)", pkg, f.Name())
			}
		case *ast.RangeStmt:
			if !analysis.IsMap(pass.Info, n.X) {
				return true
			}
			keyObj := rangeVarObj(pass.Info, n.Key)
			if bad, what := checkRangeBody(pass, n.Body, keyObj, sortedAfter, n.Body.End()); bad {
				pass.Reportf(n.Pos(), "map range with order-dependent body in deterministic function (%s); sort the keys first or //cluseq:allow with a reason", what)
			}
			return false // already vetted the body statement-by-statement
		}
		return true
	})
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return analysis.ObjOf(info, id)
}

// checkRangeBody walks a map-range body and reports the first construct
// whose effect depends on iteration order.
func checkRangeBody(pass *analysis.Pass, body *ast.BlockStmt, key types.Object, sortedAfter func(ast.Expr, token.Pos) bool, loopEnd token.Pos) (bad bool, what string) {
	var visit func(stmts []ast.Stmt) (bool, string)
	visit = func(stmts []ast.Stmt) (bool, string) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.AssignStmt:
				if b, w := checkAssign(pass, s, key, sortedAfter, loopEnd); b {
					return true, w
				}
			case *ast.IncDecStmt:
				// Counting (x++/x--) commutes for integers and for the
				// exact +1.0 float step.
			case *ast.IfStmt:
				if callFree(pass, s.Cond) != nil {
					return true, "call in condition"
				}
				if b, w := visit(s.Body.List); b {
					return true, w
				}
				if s.Else != nil {
					switch e := s.Else.(type) {
					case *ast.BlockStmt:
						if b, w := visit(e.List); b {
							return true, w
						}
					case *ast.IfStmt:
						if b, w := visit([]ast.Stmt{e}); b {
							return true, w
						}
					}
				}
			case *ast.BlockStmt:
				if b, w := visit(s.List); b {
					return true, w
				}
			case *ast.DeclStmt:
				// var declarations introduce locals; fine.
			case *ast.BranchStmt:
				if s.Tok == token.BREAK {
					return true, "break exits on an order-dependent iteration"
				}
				// continue only skips; order-neutral.
			case *ast.ReturnStmt:
				return true, "return inside map range"
			default:
				return true, "statement of kind " + nodeKind(s)
			}
		}
		return false, ""
	}
	return visit(body.List)
}

// checkAssign vets one assignment inside a map-range body.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt, key types.Object, sortedAfter func(ast.Expr, token.Pos) bool, loopEnd token.Pos) (bool, string) {
	if s.Tok == token.DEFINE {
		return false, "" // new locals are per-iteration
	}
	for i, lhs := range s.Lhs {
		// Key-indexed element writes land deterministically regardless of
		// visit order.
		if ix, ok := lhs.(*ast.IndexExpr); ok && key != nil && mentions(pass.Info, ix.Index, key) {
			continue
		}
		// x = append(x, ...) is fine when x is sorted after the loop.
		if i < len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isAppend(pass.Info, call) && len(call.Args) > 0 &&
				types.ExprString(call.Args[0]) == types.ExprString(lhs) {
				if sortedAfter(lhs, loopEnd) {
					continue
				}
				return true, "appends to " + types.ExprString(lhs) + " which is never sorted afterwards"
			}
		}
		// Integer op-assign accumulation commutes exactly.
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			if isInteger(pass.Info, lhs) {
				continue
			}
			if isFloat(pass.Info, lhs) {
				return true, "floating-point accumulation over map order"
			}
		case token.MUL_ASSIGN:
			if isInteger(pass.Info, lhs) {
				continue
			}
			return true, "floating-point accumulation over map order"
		}
		return true, "writes " + types.ExprString(lhs) + " dependent on iteration order"
	}
	return false, ""
}

// callFree returns the first call expression found in e (nil if none),
// ignoring len/cap.
func callFree(pass *analysis.Pass, e ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found != nil {
			return found == nil
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := analysis.ObjOf(pass.Info, id).(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return true
			}
		}
		found = call
		return false
	})
	return found
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := analysis.ObjOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func mentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && analysis.ObjOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isInteger(info *types.Info, e ast.Expr) bool {
	return basicInfo(info, e)&types.IsInteger != 0
}

func isFloat(info *types.Info, e ast.Expr) bool {
	return basicInfo(info, e)&types.IsFloat != 0
}

func basicInfo(info *types.Info, e ast.Expr) types.BasicInfo {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return 0
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	return b.Info()
}

func nodeKind(n ast.Node) string {
	switch n.(type) {
	case *ast.ExprStmt:
		return "call statement"
	case *ast.ForStmt, *ast.RangeStmt:
		return "nested loop"
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return "switch"
	default:
		return "unsupported statement"
	}
}
