package determinism_test

import (
	"testing"

	"cluseq/tools/cluseqvet/internal/analysis"
	"cluseq/tools/cluseqvet/internal/analysis/analysistest"
	"cluseq/tools/cluseqvet/internal/analyzers/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{determinism.Analyzer}, "determtest")
}
