package determtest

import (
	"math/rand"
	"sort"
	"time"
)

type engine struct{ rng *rand.Rand }

//cluseq:deterministic
func clock() int64 {
	return time.Now().Unix() // want `time\.Now in deterministic function`
}

//cluseq:deterministic
func draw(e *engine) int {
	a := e.rng.Intn(10) // a method on the seeded source is fine
	b := rand.Intn(10)  // want `package-level math/rand\.Intn in deterministic function`
	return a + b
}

//cluseq:deterministic
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // fine: keys are sorted after the loop
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//cluseq:deterministic
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys which is never sorted`
		keys = append(keys, k)
	}
	return keys
}

//cluseq:deterministic
func indexed(m map[int]string, out []string) {
	for k, v := range m {
		out[k] = v // fine: element writes partitioned by the key
	}
}

//cluseq:deterministic
func counted(m map[int]bool) int {
	n := 0
	for range m {
		n++ // fine: integer counting commutes
	}
	return n
}

//cluseq:deterministic
func intSum(m map[int]int) int {
	t := 0
	for _, v := range m {
		t += v // fine: integer addition commutes exactly
	}
	return t
}

//cluseq:deterministic
func floatAccum(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m { // want `floating-point accumulation`
		t += v
	}
	return t
}

//cluseq:deterministic
func earlyBreak(m map[int]bool) {
	for k := range m { // want `break exits on an order-dependent iteration`
		if k > 3 {
			break
		}
	}
}

//cluseq:deterministic
func earlyReturn(m map[int]bool) int {
	for k := range m { // want `return inside map range`
		return k
	}
	return -1
}

//cluseq:deterministic
func callInBody(m map[int]bool, sink func(int)) {
	for k := range m { // want `order-dependent body`
		sink(k)
	}
}

//cluseq:deterministic
func waivedRange(m map[int]bool) int {
	best := -1
	for k := range m { //cluseq:allow determinism: max over int keys is order-independent
		if k > best {
			best = k
		}
	}
	return best
}

//cluseq:deterministic
func sliceRange(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v // fine: slice iteration order is fixed
	}
	return t
}
