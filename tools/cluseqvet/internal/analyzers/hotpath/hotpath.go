// Package hotpath enforces the allocation/locking discipline of
// //cluseq:hotpath functions: the compiled snapshot scan, the tree
// similarity fallback, pool dispatch, and obs handle updates. A hot
// function may not log, format, allocate, touch maps, defer, or block on
// synchronization, and may only call other hotpath-annotated functions
// (plus a small allowlist: sync/atomic, and math except the Log family).
// Violations that are deliberate carry a //cluseq:allow hotpath waiver
// with a reason.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cluseq/tools/cluseqvet/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "check //cluseq:hotpath functions for logs, locks, maps, allocation, and unannotated callees",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Dirs.FuncDirectives(fd)["hotpath"] {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocation in hot path")
			return false // the literal's body runs outside this function's contract
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in hot path")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in hot path")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in hot path")
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				pass.Reportf(n.Pos(), "channel receive in hot path")
			case token.AND:
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "allocation in hot path: pointer to composite literal")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "allocation in hot path: map literal")
				case *types.Slice:
					pass.Reportf(n.Pos(), "allocation in hot path: slice literal")
				}
			}
		case *ast.IndexExpr:
			if analysis.IsMap(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "map access in hot path")
			}
		case *ast.RangeStmt:
			if analysis.IsMap(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "range over map in hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "string concatenation in hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.Info, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation in hot path")
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversions: numeric conversions are free; string <-> byte/rune
	// slice conversions allocate.
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type.Underlying()
		if b, ok := dst.(*types.Basic); ok && b.Info()&types.IsString != 0 && len(call.Args) == 1 && !isString(pass.Info, call.Args[0]) {
			pass.Reportf(call.Pos(), "allocation in hot path: conversion to string")
		}
		if _, ok := dst.(*types.Slice); ok && len(call.Args) == 1 && isString(pass.Info, call.Args[0]) {
			pass.Reportf(call.Pos(), "allocation in hot path: conversion of string to slice")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := analysis.ObjOf(pass.Info, id).(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "allocation in hot path: append")
			case "make":
				pass.Reportf(call.Pos(), "allocation in hot path: make")
			case "new":
				pass.Reportf(call.Pos(), "allocation in hot path: new")
			case "delete", "clear":
				pass.Reportf(call.Pos(), "map mutation in hot path: %s", b.Name())
			case "close":
				pass.Reportf(call.Pos(), "channel operation in hot path: close")
			case "panic":
				pass.Reportf(call.Pos(), "panic in hot path")
			case "print", "println":
				pass.Reportf(call.Pos(), "%s in hot path", b.Name())
			}
			return
		}
	}

	// Builtins reached through a selector — package unsafe's, in
	// practice. unsafe.Slice and friends compile to pointer arithmetic
	// without allocating (they are how the arena exposes zero-copy typed
	// views), so they pass; without this branch Callee would misreport
	// them as dynamic calls.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if b, ok := analysis.ObjOf(pass.Info, sel.Sel).(*types.Builtin); ok {
			switch b.Name() {
			case "Add", "Alignof", "Offsetof", "Sizeof", "Slice", "SliceData", "String", "StringData":
				return
			}
			pass.Reportf(call.Pos(), "hot path calls builtin %s", b.Name())
			return
		}
	}

	f := analysis.Callee(pass.Info, call)
	if f == nil {
		pass.Reportf(call.Pos(), "dynamic call in hot path")
		return
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			pass.Reportf(call.Pos(), "dynamic call in hot path: interface method %s", f.Name())
			return
		}
	}

	pkgPath, key := analysis.CalleeKey(f)
	switch pkgPath {
	case "sync/atomic":
		return // lock-free by definition
	case "math":
		if strings.HasPrefix(f.Name(), "Log") {
			pass.Reportf(call.Pos(), "hot path calls math.%s", f.Name())
		}
		return // the rest of math compiles to straight-line float ops
	case "fmt":
		pass.Reportf(call.Pos(), "hot path calls fmt.%s", f.Name())
		return
	case "sync":
		pass.Reportf(call.Pos(), "synchronization call sync.%s in hot path", key)
		return
	}
	if annotated(pass, pkgPath, key) {
		return
	}
	pass.Reportf(call.Pos(), "hot path calls unannotated function %s", callName(pkgPath, key, pass))
}

func annotated(pass *analysis.Pass, pkgPath, key string) bool {
	if pkgPath == pass.Pkg.Path() && pass.Dirs.Annotated(key, "hotpath") {
		return true
	}
	return pass.Index.Annotated(pkgPath, key, "hotpath")
}

func callName(pkgPath, key string, pass *analysis.Pass) string {
	if pkgPath == "" || pkgPath == pass.Pkg.Path() {
		return key
	}
	if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
		return pkgPath[i+1:] + "." + key
	}
	return pkgPath + "." + key
}
