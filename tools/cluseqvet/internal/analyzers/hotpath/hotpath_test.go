package hotpath_test

import (
	"testing"

	"cluseq/tools/cluseqvet/internal/analysis"
	"cluseq/tools/cluseqvet/internal/analysis/analysistest"
	"cluseq/tools/cluseqvet/internal/analyzers/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "hotpathtest")
}
