package hotpathtest

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

//cluseq:hotpath
func helperOK(x float64) float64 { return x * 2 }

func plain(x float64) float64 { return x }

//cluseq:hotpath
func scan(xs []float64, m map[int]float64, mu *sync.Mutex, n *atomic.Int64, ch chan int, fn func(int)) float64 {
	total := math.Abs(xs[0]) // math (non-Log) and slice indexing are fine
	total += helperOK(total) // annotated callee: fine
	total += math.Log(total) // want `hot path calls math\.Log`
	fmt.Println(total)       // want `hot path calls fmt\.Println`
	total += plain(total)    // want `hot path calls unannotated function plain`
	total += m[3]            // want `map access in hot path`
	for k := range m {       // want `range over map in hot path`
		_ = k
	}
	mu.Lock()          // want `synchronization call sync\.Mutex\.Lock in hot path`
	defer mu.Unlock()  // want `defer in hot path` `synchronization call sync\.Mutex\.Unlock in hot path`
	n.Add(1)           // sync/atomic: fine
	ch <- 1            // want `channel send in hot path`
	<-ch               // want `channel receive in hot path`
	xs = append(xs, 1) // want `allocation in hot path: append`
	_ = make([]int, 4) // want `allocation in hot path: make`
	_ = new(int)       // want `allocation in hot path: new`
	fn(3)              // want `dynamic call in hot path`
	_ = func() {}      // want `closure allocation in hot path`
	return total
}

type point struct{ x, y int }

//cluseq:hotpath
func alloc(a, b string, bs []byte) string {
	c := a + b     // want `string concatenation in hot path`
	c += a         // want `string concatenation in hot path`
	_ = string(bs) // want `allocation in hot path: conversion to string`
	_ = []byte(a)  // want `allocation in hot path: conversion of string to slice`
	_ = &point{}   // want `allocation in hot path: pointer to composite literal`
	_ = []int{1}   // want `allocation in hot path: slice literal`
	_ = point{}    // a by-value struct literal stays on the stack: fine
	return c
}

//cluseq:hotpath
func view(b []byte, n int) []uint32 {
	p := unsafe.Pointer(&b[0])                             // conversion to unsafe.Pointer: fine
	p = unsafe.Add(p, uintptr(0)*unsafe.Sizeof(uint32(0))) // package unsafe builtins: fine
	return unsafe.Slice((*uint32)(p), n)                   // zero-copy reinterpretation, no allocation: fine
}

//cluseq:hotpath
func guard(ok bool) {
	if !ok {
		panic("bad") // want `panic in hot path`
	}
}

//cluseq:hotpath
func waived(m map[int]int) int {
	x := m[0] //cluseq:allow hotpath: frozen lookup table, read-only after build
	y := m[1] // want `map access in hot path`
	return x + y
}

//cluseq:hotpath
func waivedSpan(m map[int]int) int {
	total := 0
	//cluseq:allow hotpath: iteration over a frozen table; the sum is order-independent
	for _, v := range m {
		total += v
	}
	return total
}

//cluseq:hotpath
func waivedNoReason(m map[int]int) int {
	return m[1] //cluseq:allow hotpath: // want `requires a reason` `map access in hot path`
}

//cluseq:hotpath
func unusedWaiver(x int) int {
	return x + 1 //cluseq:allow hotpath: nothing on this line violates // want `unused //cluseq:allow waiver for hotpath`
}
