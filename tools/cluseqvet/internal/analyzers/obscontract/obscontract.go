// Package obscontract enforces the observability layer's contracts.
// First, nil handles are no-ops: every exported pointer-receiver method
// on an exported internal/obs type must begin with a nil-receiver guard
// (or be a single-statement delegation to another method on the same
// receiver, which inherits the guard). Second, metric names registered
// as string literals must be valid Prometheus series names and unique
// across the whole program — two packages registering the same name, or
// the same name as different metric kinds, collide silently at runtime.
// Third, span names passed as literals to RequestTrace.StartSpan,
// RequestTrace.StartSpanUnder, and Tracer.Span must be lower_snake
// identifiers (the span taxonomy is grep'd by dashboards and the CI
// trace-identity check), and a span started into a named handle must be
// ended — by a direct End call or a defer — somewhere in the same
// function, or it sits open in the flight recorder forever (dur_us -1).
package obscontract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"cluseq/tools/cluseqvet/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obscontract",
	Doc:  "check obs handle nil-guards and Prometheus metric-name validity/uniqueness",
	Run:  run,
}

// metricNameRE is the Prometheus data-model rule for series names.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// spanNameRE is the repo's span taxonomy rule: lower_snake identifiers
// like "classify_scan" or "stream_queue_wait".
var spanNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registrars maps obs.Registry constructor-method names to metric kinds.
var registrars = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
}

// spanStarters maps obs span-opening method names to (receiver type,
// index of the name argument).
var spanStarters = map[string]struct {
	recv    string
	nameArg int
}{
	"StartSpan":      {"RequestTrace", 0},
	"StartSpanUnder": {"RequestTrace", 1},
	"Span":           {"Tracer", 0},
}

func run(pass *analysis.Pass) error {
	inObs := strings.HasSuffix(pass.Pkg.Path(), "internal/obs")
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		if inObs {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkNilGuard(pass, fd)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkRegistration(pass, call)
				checkSpanName(pass, call)
			}
			return true
		})
		if !inObs {
			// internal/obs itself is the implementation: StartSpan returns
			// the handle to its caller by design.
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkSpanEnds(pass, fd)
				}
			}
		}
	}
	return nil
}

// checkNilGuard requires exported pointer-receiver methods on exported
// types to start with `if recv == nil { ... }` (possibly ||-combined
// with other conditions), or to consist of exactly one statement that
// calls another method on the same receiver.
func checkNilGuard(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil || !fd.Name.IsExported() {
		return
	}
	recvType := fd.Recv.List[0].Type
	st, ok := recvType.(*ast.StarExpr)
	if !ok {
		return // value receivers can't be nil
	}
	base, ok := st.X.(*ast.Ident)
	if !ok || !base.IsExported() {
		return
	}
	var recvIdent *ast.Ident
	if names := fd.Recv.List[0].Names; len(names) > 0 && names[0].Name != "_" {
		recvIdent = names[0]
	}
	if recvIdent == nil {
		// Unnamed receiver: the body cannot dereference it, so nil is
		// trivially safe.
		return
	}
	recvObj := analysis.ObjOf(pass.Info, recvIdent)

	if len(fd.Body.List) > 0 {
		if ifs, ok := fd.Body.List[0].(*ast.IfStmt); ok && condChecksNil(pass.Info, ifs.Cond, recvObj) {
			return
		}
	}
	if len(fd.Body.List) == 1 && delegatesToReceiver(pass.Info, fd.Body.List[0], recvObj) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported method (*%s).%s must begin with a nil-receiver guard", base.Name, fd.Name.Name)
}

// condChecksNil reports whether cond contains `recv == nil`.
func condChecksNil(info *types.Info, cond ast.Expr, recv types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.EQL {
			return !found
		}
		x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
		if isObj(info, x, recv) && isNil(info, y) || isObj(info, y, recv) && isNil(info, x) {
			found = true
		}
		return !found
	})
	return found
}

// delegatesToReceiver reports whether stmt is a bare call (or return of
// a call) to a method on recv — e.g. `func (c *Counter) Inc() { c.Add(1) }`.
// The callee's own guard covers the nil case.
func delegatesToReceiver(info *types.Info, stmt ast.Stmt, recv types.Object) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isObj(info, ast.Unparen(sel.X), recv)
}

func isObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && analysis.ObjOf(info, id) == obj
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := analysis.ObjOf(info, id).(*types.Nil)
	return isNilObj
}

// checkRegistration validates literal metric names passed to
// (*obs.Registry).Counter/Gauge/Histogram anywhere in the program and
// records them in the shared index for cross-package uniqueness.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr) {
	f := analysis.Callee(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	kind, ok := registrars[f.Name()]
	if !ok {
		return
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // dynamically built names are out of static reach; skip
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !metricNameRE.MatchString(name) {
		pass.Reportf(lit.Pos(), "invalid Prometheus metric name %q", name)
		return
	}
	pos := pass.Fset.Position(lit.Pos())
	site := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	var sameKind, otherKind *analysis.MetricReg
	for _, prev := range pass.Index.Metrics(name) {
		if prev.Site == site {
			continue
		}
		prev := prev
		if prev.Kind == kind {
			if sameKind == nil {
				sameKind = &prev
			}
		} else if otherKind == nil {
			otherKind = &prev
		}
	}
	switch {
	case sameKind != nil:
		pass.Reportf(lit.Pos(), "metric %q already registered at %s; share one handle instead", name, sameKind.Site)
	case otherKind != nil:
		pass.Reportf(lit.Pos(), "metric %q registered as %s here but as %s at %s", name, kind, otherKind.Kind, otherKind.Site)
	}
	pass.Index.AddMetric(analysis.MetricReg{Name: name, Kind: kind, Pkg: pass.Pkg.Path(), Site: site})
}

// spanStarter resolves call to an obs span-opening method, returning
// the index of its name argument, or -1 when it is something else.
func spanStarter(info *types.Info, call *ast.CallExpr) int {
	f := analysis.Callee(info, call)
	if f == nil || f.Pkg() == nil {
		return -1
	}
	want, ok := spanStarters[f.Name()]
	if !ok {
		return -1
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return -1
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != want.recv || named.Obj().Pkg() == nil ||
		!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
		return -1
	}
	return want.nameArg
}

// checkSpanName validates literal span names passed to obs span
// openers, the same way literal metric names are validated.
func checkSpanName(pass *analysis.Pass, call *ast.CallExpr) {
	nameArg := spanStarter(pass.Info, call)
	if nameArg < 0 || len(call.Args) <= nameArg {
		return
	}
	lit, ok := ast.Unparen(call.Args[nameArg]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // dynamically built names are out of static reach; skip
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !spanNameRE.MatchString(name) {
		pass.Reportf(lit.Pos(), "invalid span name %q (want lower_snake like \"classify_scan\")", name)
	}
}

// checkSpanEnds flags spans opened in fd that can never close: a span
// handle that is discarded outright, or assigned to a variable with no
// End call (direct or deferred, including inside func literals) anywhere
// in the same function. Handles that escape through other expressions —
// returned, passed along, stored — are out of static reach and skipped.
func checkSpanEnds(pass *analysis.Pass, fd *ast.FuncDecl) {
	type open struct {
		pos  token.Pos
		name string // method name, for the diagnostic
		obj  types.Object
	}
	var opens []open
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && spanStarter(pass.Info, call) >= 0 {
				opens = append(opens, open{pos: call.Pos(), name: starterName(pass.Info, call)})
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 || len(s.Lhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || spanStarter(pass.Info, call) < 0 {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				opens = append(opens, open{pos: call.Pos(), name: starterName(pass.Info, call)})
				return true
			}
			opens = append(opens, open{pos: call.Pos(), name: starterName(pass.Info, call), obj: analysis.ObjOf(pass.Info, id)})
		}
		return true
	})
	if len(opens) == 0 {
		return
	}
	ended := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := analysis.ObjOf(pass.Info, id); obj != nil {
				ended[obj] = true
			}
		}
		return true
	})
	for _, o := range opens {
		if o.obj == nil {
			pass.Reportf(o.pos, "%s discards its span handle; the span can never be ended", o.name)
			continue
		}
		if !ended[o.obj] {
			pass.Reportf(o.pos, "span from %s is never ended in this function; call %s.End (or defer it)", o.name, o.obj.Name())
		}
	}
}

// starterName names the span-opening method for diagnostics.
func starterName(info *types.Info, call *ast.CallExpr) string {
	if f := analysis.Callee(info, call); f != nil {
		return f.Name()
	}
	return "span start"
}
