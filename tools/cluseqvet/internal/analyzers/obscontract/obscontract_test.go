package obscontract_test

import (
	"testing"

	"cluseq/tools/cluseqvet/internal/analysis"
	"cluseq/tools/cluseqvet/internal/analysis/analysistest"
	"cluseq/tools/cluseqvet/internal/analyzers/obscontract"
)

func TestObsContract(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{obscontract.Analyzer},
		"internal/obs", "obsuser", "obsuser2", "spanuser")
}
