package obs

type Counter struct{ v int64 }

func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

func (c *Counter) Inc() { c.Add(1) } // fine: delegates to a guarded method

func (c *Counter) Value() int64 { // want `exported method \(\*Counter\)\.Value must begin with a nil-receiver guard`
	return c.v
}

func (c *Counter) Reset() int64 { // want `exported method \(\*Counter\)\.Reset must begin with a nil-receiver guard`
	old := c.v
	c.v = 0
	return old
}

func (c *Counter) MaybeAdd(n int64, ok bool) {
	if c == nil || !ok { // a combined condition still guards
		return
	}
	c.v += n
}

func (c *Counter) reset() { c.v = 0 } // fine: unexported

func (c Counter) Peek() int64 { return c.v } // fine: value receiver cannot be nil

type registry struct{ v int } // unexported type: methods exempt

func (r *registry) Bump() { r.v++ }

type Registry struct{ names map[string]string }

func NewRegistry() *Registry { return &Registry{names: map[string]string{}} }

func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.names[name] = "counter"
	return &Counter{}
}

func (r *Registry) Gauge(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.names[name] = "gauge"
	return &Counter{}
}

func (r *Registry) Histogram(name string, lo, hi float64, buckets int, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.names[name] = "histogram"
	return &Counter{}
}

// Span surface, mirroring the real package's request-trace and tracer
// span openers for the span-name and span-end checks.

type SpanHandle struct{ idx int }

func (h SpanHandle) End() {}

type RequestTrace struct{ n int }

func (t *RequestTrace) StartSpan(name string) SpanHandle {
	return t.StartSpanUnder(SpanHandle{}, name)
}

func (t *RequestTrace) StartSpanUnder(parent SpanHandle, name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	t.n++
	return SpanHandle{idx: t.n}
}

type Span struct{ name string }

func (s *Span) End(attrs ...int) {
	if s == nil {
		return
	}
	s.name = ""
}

type Tracer struct{ spans int }

func (t *Tracer) Span(name string, attrs ...int) *Span {
	if t == nil {
		return nil
	}
	t.spans++
	return &Span{name: name}
}
