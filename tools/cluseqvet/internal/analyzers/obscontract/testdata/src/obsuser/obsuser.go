package obsuser

import "internal/obs"

var reg = obs.NewRegistry()

var (
	a = reg.Counter("app_requests_total")
	b = reg.Counter("bad name")           // want `invalid Prometheus metric name "bad name"`
	c = reg.Counter("0starts_with_digit") // want `invalid Prometheus metric name`
	d = reg.Gauge("app_requests_total")   // want `metric "app_requests_total" registered as gauge here but as counter`
	e = reg.Counter("app_requests_total") // want `metric "app_requests_total" already registered`
	f = reg.Histogram("app_latency_seconds", 0, 1, 100)
	g = reg.Counter("app_errors_total", "class", "parse") // labels do not affect the name check
)

func dynamic(prefix string) *obs.Counter {
	return reg.Counter(prefix + "_total") // fine: non-literal names are out of static reach
}
