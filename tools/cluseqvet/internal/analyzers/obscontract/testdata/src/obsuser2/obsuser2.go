package obsuser2

import "internal/obs"

var reg = obs.NewRegistry()

// The same series name as obsuser registers: a cross-package collision
// the facts index must carry between packages.
var dup = reg.Counter("app_requests_total") // want `metric "app_requests_total" already registered`

var ok = reg.Counter("app2_requests_total")
