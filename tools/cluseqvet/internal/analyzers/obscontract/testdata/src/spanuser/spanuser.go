package spanuser

import "internal/obs"

var tracer = &obs.Tracer{}

func ok(tr *obs.RequestTrace) {
	sp := tr.StartSpan("classify_scan")
	defer sp.End()
	child := tr.StartSpanUnder(sp, "classify_model")
	child.End()
}

func okDeferredInClosure(tr *obs.RequestTrace) {
	work := tr.StartSpan("stream_ingest")
	defer func() {
		work.End()
	}()
}

func okReassigned() {
	sp := tracer.Span("generate")
	sp.End()
	sp = tracer.Span("consolidate")
	sp.End(1)
}

func okDynamic(tr *obs.RequestTrace, phase string) {
	sp := tr.StartSpan(phase) // fine: non-literal names are out of static reach
	sp.End()
}

func badNames(tr *obs.RequestTrace) {
	a := tr.StartSpan("Classify-Scan") // want `invalid span name "Classify-Scan"`
	a.End()
	b := tr.StartSpanUnder(a, "9lives") // want `invalid span name "9lives"`
	b.End()
	c := tracer.Span("spaced out") // want `invalid span name "spaced out"`
	c.End()
}

func leaks(tr *obs.RequestTrace) {
	tr.StartSpan("classify_decode")       // want `StartSpan discards its span handle`
	_ = tr.StartSpan("registry_get")      // want `StartSpan discards its span handle`
	sp := tr.StartSpan("classify_encode") // want `span from StartSpan is never ended in this function; call sp\.End`
	_ = sp
	ts := tracer.Span("stream_merge") // want `span from Span is never ended in this function; call ts\.End`
	_ = ts
}

// escape hands the handle to the caller: out of static reach, skipped.
func escape(tr *obs.RequestTrace) obs.SpanHandle {
	return tr.StartSpan("stream_queue_wait")
}
