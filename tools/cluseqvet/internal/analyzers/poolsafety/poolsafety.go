// Package poolsafety enforces the read-only-scoring/serial-apply rule
// on pool fan-outs: a closure passed to (*pool.Pool).Run/RunGrain (or to
// any //cluseq:fanout-annotated function) runs concurrently for every
// task index, so it may only write state that is partitioned by its own
// index — element writes whose index derives from the closure's
// parameters. Writing a captured variable directly, or an element at an
// index independent of the task's, is a data race or an order-dependent
// result.
package poolsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"cluseq/tools/cluseqvet/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolsafety",
	Doc:  "check closures passed to pool.Run*/fanout functions for non-index-partitioned writes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := fanoutCall(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkClosure(pass, name, lit)
				}
			}
			return true
		})
	}
	return nil
}

// fanoutCall reports whether call dispatches closures across task
// indices: a method on *pool.Pool named Run/RunGrain, or any function
// annotated //cluseq:fanout.
func fanoutCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	f := analysis.Callee(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	if f.Name() == "Run" || f.Name() == "RunGrain" {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok &&
				named.Obj().Name() == "Pool" &&
				named.Obj().Pkg() != nil &&
				hasSuffix(named.Obj().Pkg().Path(), "internal/pool") {
				return "pool." + f.Name(), true
			}
		}
	}
	pkgPath, key := analysis.CalleeKey(f)
	if pkgPath == pass.Pkg.Path() && pass.Dirs.Annotated(key, "fanout") {
		return key, true
	}
	if pass.Index.Annotated(pkgPath, key, "fanout") {
		return key, true
	}
	return "", false
}

func hasSuffix(s, suffix string) bool {
	return s == suffix || (len(s) > len(suffix) && s[len(s)-len(suffix)-1] == '/' && s[len(s)-len(suffix):] == suffix)
}

// checkClosure walks one fan-out closure body looking for writes that
// are not partitioned by the closure's parameters.
func checkClosure(pass *analysis.Pass, fanout string, lit *ast.FuncLit) {
	tainted := taintedObjects(pass, lit)
	inside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	checkTarget := func(e ast.Expr, pos token.Pos) {
		for {
			switch t := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj := analysis.ObjOf(pass.Info, t)
				if obj == nil || inside(obj) {
					return // local to the closure: per-task state
				}
				pass.Reportf(pos, "closure passed to %s writes captured variable %q; partition by the task index or apply serially", fanout, t.Name)
				return
			case *ast.IndexExpr:
				// A captured map races even at distinct keys; check it
				// before granting the index-partition exemption.
				if analysis.IsMap(pass.Info, t.X) {
					if base := rootIdent(t.X); base != nil {
						if obj := analysis.ObjOf(pass.Info, base); obj != nil && !inside(obj) {
							pass.Reportf(pos, "closure passed to %s writes a captured map; maps cannot be index-partitioned", fanout)
						}
					}
					return
				}
				if mentionsAny(pass.Info, t.Index, tainted) {
					return // element write partitioned by the task index
				}
				// A fixed or captured index: writing base[e] races with
				// the other tasks unless base itself is closure-local.
				e2 := t.X
				if base := rootIdent(e2); base != nil {
					obj := analysis.ObjOf(pass.Info, base)
					if obj == nil || inside(obj) {
						return
					}
					pass.Reportf(pos, "closure passed to %s writes %q at an index that does not depend on the task index", fanout, base.Name)
					return
				}
				return
			case *ast.SelectorExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			default:
				return
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkTarget(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			checkTarget(n.X, n.X.Pos())
		}
		return true
	})
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// taintedObjects computes the closure parameters plus every local whose
// initialization mentions an already-tainted object (one level of
// dataflow per pass, iterated to fixpoint). An index expression must
// mention a tainted object to count as partitioned by the task index.
func taintedObjects(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := analysis.ObjOf(pass.Info, name); obj != nil {
					tainted[obj] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := analysis.ObjOf(pass.Info, id)
				if obj == nil || tainted[obj] {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs != nil && mentionsAny(pass.Info, rhs, tainted) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

func mentionsAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[analysis.ObjOf(info, id)] {
			found = true
		}
		return !found
	})
	return found
}
