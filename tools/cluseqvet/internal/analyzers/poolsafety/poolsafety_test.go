package poolsafety_test

import (
	"testing"

	"cluseq/tools/cluseqvet/internal/analysis"
	"cluseq/tools/cluseqvet/internal/analysis/analysistest"
	"cluseq/tools/cluseqvet/internal/analyzers/poolsafety"
)

func TestPoolSafety(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{poolsafety.Analyzer}, "fp")
}
