package fp

import "fp/internal/pool"

// forEach fans its closure out across indices, like engine.forEachWorker.
//
//cluseq:fanout
func forEach(n int, fn func(int)) {
	pool.New(4).Run(n, fn)
}

func good(xs []float64) []float64 {
	out := make([]float64, len(xs))
	pool.New(4).Run(len(xs), func(i int) {
		out[i] = xs[i] * 2 // fine: partitioned by the task index
	})
	return out
}

func derivedIndex(xs []float64, order []int) []float64 {
	out := make([]float64, len(xs))
	pool.New(4).RunGrain(len(xs), 8, func(i int) {
		j := order[i]
		out[j] = xs[j] // fine: j derives from the task index
	})
	return out
}

func locals(xs []float64) []float64 {
	out := make([]float64, len(xs))
	pool.New(4).Run(len(xs), func(i int) {
		acc := 0.0
		for _, v := range xs {
			acc += v // fine: acc is closure-local
		}
		out[i] = acc
	})
	return out
}

func capturedScalar(xs []float64) float64 {
	var total float64
	pool.New(4).Run(len(xs), func(i int) {
		total += xs[i] // want `closure passed to pool\.Run writes captured variable "total"`
	})
	return total
}

func capturedCounter(xs []float64) int {
	done := 0
	pool.New(4).Run(len(xs), func(i int) {
		done++ // want `closure passed to pool\.Run writes captured variable "done"`
	})
	return done
}

func fixedIndex(xs []float64) []float64 {
	out := make([]float64, len(xs))
	pool.New(4).Run(len(xs), func(i int) {
		out[0] = xs[i] // want `closure passed to pool\.Run writes "out" at an index that does not depend on the task index`
	})
	return out
}

func capturedMap(xs []float64) map[int]float64 {
	m := map[int]float64{}
	pool.New(4).Run(len(xs), func(i int) {
		m[i] = xs[i] // want `closure passed to pool\.Run writes a captured map`
	})
	return m
}

func viaFanout(xs []float64) float64 {
	var sum float64
	forEach(len(xs), func(i int) {
		sum += xs[i] // want `closure passed to forEach writes captured variable "sum"`
	})
	return sum
}

func fieldWrite(xs []float64) struct{ n int } {
	var s struct{ n int }
	pool.New(4).Run(len(xs), func(i int) {
		s.n = i // want `closure passed to pool\.Run writes captured variable "s"`
	})
	return s
}

func serialOK(xs []float64) float64 {
	var sum float64
	for i := range xs {
		sum += xs[i] // fine: a plain loop, not a fan-out
	}
	return sum
}

func waived(xs []float64) int {
	done := 0
	pool.New(4).Run(len(xs), func(i int) {
		done = 1 //cluseq:allow poolsafety: monotone flag; any winner writes the same value
	})
	return done
}
