package pool

type Pool struct{ workers int }

func New(workers int) *Pool { return &Pool{workers: workers} }

func (p *Pool) Run(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func (p *Pool) RunGrain(n, grain int, fn func(int)) { p.Run(n, fn) }
