// Command cluseqvet is the project's static-analysis suite: four
// checkers that turn CLUSEQ's load-bearing runtime contracts (hot-path
// allocation discipline, phase determinism, nil-safe observability
// handles, fan-out write partitioning) into build failures.
//
// It runs two ways:
//
//	cluseqvet [-dir d] ./...        # standalone, loads packages itself
//	go vet -vettool=cluseqvet ./... # as a vet tool (unitchecker protocol)
//
// The vet protocol drives one process per package and passes facts
// between them through .vetx files; standalone mode loads the whole
// module in dependency order and shares one in-process index. Both
// print findings as file:line:col: analyzer: message.
package main

import (
	"fmt"
	"os"
	"strings"

	"cluseq/tools/cluseqvet/internal/analysis"
	"cluseq/tools/cluseqvet/internal/analyzers/determinism"
	"cluseq/tools/cluseqvet/internal/analyzers/hotpath"
	"cluseq/tools/cluseqvet/internal/analyzers/obscontract"
	"cluseq/tools/cluseqvet/internal/analyzers/poolsafety"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpath.Analyzer,
		determinism.Analyzer,
		obscontract.Analyzer,
		poolsafety.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// The go vet handshake: version fingerprint and flag discovery.
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}

	// Unitchecker mode: a single *.cfg argument from go vet.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0]))
	}

	os.Exit(standalone(args))
}

// standalone loads the requested packages (default ./...) and runs all
// analyzers over them in dependency order.
func standalone(args []string) int {
	dir := "."
	var patterns []string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "--":
			// go run inserts the separator verbatim; ignore it.
		case args[i] == "-dir" && i+1 < len(args):
			dir = args[i+1]
			i++
		case strings.HasPrefix(args[i], "-dir="):
			dir = strings.TrimPrefix(args[i], "-dir=")
		case strings.HasPrefix(args[i], "-"):
			fmt.Fprintf(os.Stderr, "cluseqvet: unknown flag %s\n", args[i])
			return 2
		default:
			patterns = append(patterns, args[i])
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := RunDir(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluseqvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// RunDir is the standalone engine, shared with the tests: load, analyze
// in dependency order with one facts index, return all diagnostics.
func RunDir(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	index := analysis.NewIndex()
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		index.AddAnnotations(pkg.ImportPath, pkg.Dirs.Annotations())
		ds, err := analysis.Run(pkg, analyzers(), index)
		if err != nil {
			return diags, err
		}
		diags = append(diags, ds...)
		diags = append(diags, pkg.Dirs.Problems()...)
	}
	return diags, nil
}
