package main

import (
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cluseq/tools/cluseqvet/internal/analysis"
)

// repoRoot is the main module this tool polices, relative to this test's
// working directory (tools/cluseqvet).
const repoRoot = "../.."

// TestRepoPassesClean is the contract the CI lint job enforces: the repo's
// own sources produce zero diagnostics. Because unused waivers are
// themselves diagnostics, a clean run additionally proves every
// //cluseq:allow in the tree still suppresses something real.
func TestRepoPassesClean(t *testing.T) {
	diags, err := RunDir(repoRoot, "./...")
	if err != nil {
		t.Fatalf("RunDir: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSimilarityReachableFunctionsAreHotpath walks the static call graph
// from the two similarity entry points — the compiled Snapshot scan and
// the tree-shaped fallback — and asserts every module function reachable
// from them carries //cluseq:hotpath, so the whole scoring loop stays
// under the analyzer's no-alloc/no-lock contract. Call sites under a
// hotpath waiver are treated as leaving the hot region (e.g. the cold
// buildLogBg miss path), mirroring the analyzer's own escape hatch, and
// closure bodies are skipped the same way the analyzer skips them.
func TestSimilarityReachableFunctionsAreHotpath(t *testing.T) {
	pkgs, err := analysis.Load(repoRoot, "./internal/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	type fnRef struct {
		pkg  *analysis.Package
		decl *ast.FuncDecl
	}
	byPkg := map[string]*analysis.Package{}
	decls := map[string]fnRef{} // "pkgPath\x00funcKey" → declaration
	for _, p := range pkgs {
		byPkg[p.ImportPath] = p
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					decls[p.ImportPath+"\x00"+analysis.FuncKey(fd)] = fnRef{p, fd}
				}
			}
		}
	}

	// Lines covered by a hotpath waiver, per file. The analyzer resolves
	// waivers to statement spans; for call-graph purposes the waiver's own
	// line (end-of-line form) and the next line (standalone form) identify
	// the escaping call sites precisely enough for this repo.
	waivedLines := map[string]map[int]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//cluseq:allow hotpath:") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					m := waivedLines[pos.Filename]
					if m == nil {
						m = map[int]bool{}
						waivedLines[pos.Filename] = m
					}
					m[pos.Line], m[pos.Line+1] = true, true
				}
			}
		}
	}

	roots := []struct{ pkg, key string }{
		{"cluseq/internal/pst", "Snapshot.Similarity"},
		{"cluseq/internal/pst", "Tree.Similarity"},
	}
	queue := make([]string, 0, len(roots))
	seen := map[string]bool{}
	for _, r := range roots {
		id := r.pkg + "\x00" + r.key
		if _, ok := decls[id]; !ok {
			t.Fatalf("entry point %s.%s not found — did it move?", r.pkg, r.key)
		}
		queue = append(queue, id)
		seen[id] = true
	}

	var reached int
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		fn := decls[id]
		pkgPath, key, _ := strings.Cut(id, "\x00")
		reached++
		if !fn.pkg.Dirs.Annotated(key, "hotpath") {
			t.Errorf("%s: %s.%s is reachable from the similarity scan but lacks //cluseq:hotpath",
				fn.pkg.Fset.Position(fn.decl.Pos()), pkgPath, key)
		}
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			if _, isClosure := n.(*ast.FuncLit); isClosure {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pos := fn.pkg.Fset.Position(call.Pos())
			if waivedLines[pos.Filename][pos.Line] {
				return true
			}
			callee := analysis.Callee(fn.pkg.Info, call)
			if callee == nil {
				return true
			}
			cPkg, cKey := analysis.CalleeKey(callee)
			if _, inModule := byPkg[cPkg]; !inModule {
				return true // stdlib: the analyzer's allowlist polices these
			}
			cID := cPkg + "\x00" + cKey
			if _, ok := decls[cID]; ok && !seen[cID] {
				seen[cID] = true
				queue = append(queue, cID)
			}
			return true
		})
	}
	if reached < 5 {
		t.Fatalf("only %d functions reachable from the similarity entry points; the call-graph walk is likely broken", reached)
	}
	t.Logf("verified %d reachable functions carry //cluseq:hotpath", reached)
}

// TestSeededViolationFailsBuild proves the enforcement path end to end: a
// module with a deliberate contract violation must fail `go vet
// -vettool=cluseqvet`, with the diagnostic naming the violation. This is
// the negative control for the clean-repo test above — if the driver ever
// stopped reporting, both CI and TestRepoPassesClean would pass vacuously.
func TestSeededViolationFailsBuild(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module seeded\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "seeded.go"), `package seeded

import "math"

// Hot pretends to be on the scoring path.
//
//cluseq:hotpath
func Hot(x float64) float64 {
	return math.Log(x)
}
`)

	t.Run("standalone", func(t *testing.T) {
		diags, err := RunDir(dir, "./...")
		if err != nil {
			t.Fatalf("RunDir: %v", err)
		}
		if len(diags) == 0 {
			t.Fatal("seeded math.Log in a hotpath function produced no diagnostics")
		}
		if !strings.Contains(diags[0].String(), "math.Log") {
			t.Errorf("diagnostic does not name the violation: %s", diags[0])
		}
	})

	t.Run("vettool", func(t *testing.T) {
		bin := filepath.Join(t.TempDir(), "cluseqvet")
		build := exec.Command("go", "build", "-o", bin, ".")
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building cluseqvet: %v\n%s", err, out)
		}
		vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
		vet.Dir = dir
		out, err := vet.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet -vettool passed on a seeded violation\n%s", out)
		}
		if !strings.Contains(string(out), "math.Log") {
			t.Errorf("vet output does not name the violation:\n%s", out)
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
