package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"cluseq/tools/cluseqvet/internal/analysis"
)

// vetConfig mirrors the JSON the go command hands a -vettool for each
// package (the x/tools unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers `cluseqvet -V=full`. The go command caches vet
// results keyed on this line, so it embeds a content hash of the
// executable: rebuilding the tool invalidates stale results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Printf("cluseqvet version devel-%s\n", id)
}

// vetMode analyzes one package as directed by a go vet .cfg file and
// returns the process exit code (0 clean, 2 findings or failure).
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluseqvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cluseqvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	writeEmpty := func() int {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "cluseqvet:", err)
				return 2
			}
		}
		return 0
	}

	// Standard-library dependencies carry no //cluseq: directives and no
	// obs registry; skip the parse/typecheck entirely.
	if cfg.Standard[cfg.ImportPath] {
		return writeEmpty()
	}

	// The contracts don't apply to test files (a test may use a serial
	// pool with a captured accumulator on purpose). Non-test files never
	// depend on test files, so the remainder still type-checks.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return writeEmpty()
	}

	fset := token.NewFileSet()
	var astFiles []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeEmpty()
			}
			fmt.Fprintln(os.Stderr, "cluseqvet:", err)
			return 2
		}
		astFiles = append(astFiles, f)
	}

	imp := cfgImporter(fset, &cfg)
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, buildArchFromEnv())}
	tpkg, err := conf.Check(cfg.ImportPath, fset, astFiles, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeEmpty()
		}
		fmt.Fprintln(os.Stderr, "cluseqvet:", err)
		return 2
	}

	index := analysis.NewIndex()
	for _, vetx := range cfg.PackageVetx {
		if err := index.ReadFacts(vetx); err != nil {
			fmt.Fprintln(os.Stderr, "cluseqvet:", err)
			return 2
		}
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      astFiles,
		Pkg:        tpkg,
		Info:       info,
		Dirs:       analysis.ParseDirectives(fset, astFiles),
	}
	index.AddAnnotations(cfg.ImportPath, pkg.Dirs.Annotations())
	diags, err := analysis.Run(pkg, analyzers(), index)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluseqvet:", err)
		return 2
	}
	diags = append(diags, pkg.Dirs.Problems()...)

	if cfg.VetxOutput != "" {
		if err := index.WriteFacts(cfg.VetxOutput); err != nil {
			fmt.Fprintln(os.Stderr, "cluseqvet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// cfgImporter resolves imports through the export files go vet lists in
// the package config, following ImportMap for vendored/canonical paths.
func cfgImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config %s", path, cfg.ImportPath)
		}
		return os.Open(file)
	})
}

func buildArchFromEnv() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}
